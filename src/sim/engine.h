// Deterministic discrete-event simulation engine.
//
// Each simulated rank is a host thread, but exactly one runs at a time: the
// engine hands the execution token to the runnable rank with the smallest
// virtual wake time (ties broken by rank id), so every run is deterministic
// and event processing is totally ordered in virtual time. Rank code calls
// the engine's primitives (advance, cma_transfer, send/recv, rendezvous)
// which charge virtual time and block the calling thread until the engine
// schedules it again.
//
// Contention: per-owner ContendedResource instances model the page-lock
// serialization; transfers in flight are re-rated (their wake times edited
// in place) whenever membership at their source changes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/breakdown.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/resource.h"
#include "topo/arch_spec.h"

namespace kacc::sim {

/// Outcome of a completed survivor agreement (SimEngine::recover): every
/// participant receives the identical result, computed once when the last
/// live rank joined the protocol.
struct RecoveryResult {
  std::vector<int> survivors;     ///< participating ranks, ascending
  std::uint64_t purged_posts = 0; ///< stale channel messages quarantined
  std::uint64_t generation = 0;   ///< team generation after this shrink
};

class SimEngine {
public:
  SimEngine(ArchSpec spec, int nranks);

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] const ArchSpec& spec() const { return spec_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  /// Turns on the shared node memory domain: every with-copy transfer
  /// (CMA drain or uncached shm copy) counts against one node-wide stream
  /// total, and each resource's DRAM bandwidth share becomes
  /// max(local concurrency, node total) — the physical situation when
  /// several co-scheduled teams run on one node. Must be called before
  /// any rank thread starts. Off by default: the counter stays 0 and
  /// every rate is bit-identical to the per-team model.
  void enable_shared_node_domain() { node_domain_enabled_ = true; }
  [[nodiscard]] bool shared_node_domain() const {
    return node_domain_enabled_;
  }

  /// Installs a deterministic fault plan. Must be called before any rank
  /// thread starts. Kills unwind the target's thread with RankKilled and,
  /// once every survivor is blocked on the dead rank, poison the engine so
  /// the survivors raise PeerDiedError instead of DeadlockError.
  void set_faults(FaultInjector faults);

  /// Ranks marked dead by a Kill fault so far (scheduling order).
  [[nodiscard]] std::vector<int> dead_ranks() const;

  /// Dead ranks whose failure has not yet been absorbed by a completed
  /// recovery. Empty after a successful recover() until the next kill, so
  /// post-shrink polling loops do not park on already-recovered deaths.
  [[nodiscard]] std::vector<int> unrecovered_dead_ranks() const;

  /// Survivor agreement + epoch fence. Every live rank must call this (the
  /// runtime does so from Comm::shrink after catching PeerDiedError); the
  /// last one to join purges all stale channel posts, abandons in-flight
  /// transfers issued by dead ranks, clears the peer-death poisoning, and
  /// bumps the team generation. Throws InvalidArgument when there is no
  /// unrecovered failure, RankKilled when the caller itself is due to die,
  /// and DeadlockError when the simulation was hard-aborted meanwhile.
  RecoveryResult recover(int rank);

  /// Page-lock/link re-rate events so far: membership changes that
  /// re-published in-flight op finish times (the obs "sim_rerate_events"
  /// counter — world-level, attributed to no single rank).
  [[nodiscard]] std::uint64_t rerate_events() const { return rerate_events_; }

  // ----- thread lifecycle (called from rank threads) -----

  /// First call of a rank thread: blocks until the engine schedules it.
  void start(int rank);

  /// Last call of a rank thread: releases the token for good.
  void finish(int rank);

  /// Poisons the engine (a rank body threw); wakes everyone. Blocked ranks
  /// observe the poisoning as an exception from their next primitive.
  void abort(const std::string& reason);

  // ----- virtual-time primitives -----

  /// Current virtual time of `rank` in microseconds.
  [[nodiscard]] double now(int rank) const;

  /// Charges `us` of local work (memcpy, compute) to `rank`.
  void advance(int rank, double us);

  /// Full CMA transfer of `bytes` against the page-lock domain of
  /// `owner`: charges alpha, then drains pages under contention.
  /// `beta_mult` scales the copy bandwidth (inter-socket penalty) and
  /// `cross` marks inter-socket transfers (shared-link accounting);
  /// `with_copy=false` models a lock+pin-only probe. Returns the phase
  /// breakdown. bytes == 0 charges alpha only.
  Breakdown cma_transfer(int rank, int owner, std::uint64_t bytes,
                         double beta_mult, bool cross = false,
                         bool with_copy = true);

  /// Lockless shared-memory copy of `bytes` staged at `owner`'s socket:
  /// charges copy time only, sharing the memory system (above the cache
  /// threshold) and the socket link, without touching `owner`'s page-table
  /// lock. Used for CICO copy-outs.
  void shm_transfer(int rank, int owner, std::uint64_t bytes, bool cross);

  /// Posts a message (non-blocking for the sender). The message becomes
  /// receivable at now(rank) + delay_us.
  void post(int rank, int dst, ChannelTag tag, std::vector<std::byte> payload,
            double delay_us);

  /// Receives the next (src, rank, tag) message: completes at
  /// max(now, message avail time) + recv_cost_us. Blocks (in virtual and
  /// host time) until a message exists.
  std::vector<std::byte> receive(int rank, int src, ChannelTag tag,
                                 double recv_cost_us);

  /// Non-blocking receive: consumes the head (src, rank, tag) message iff
  /// one exists and is already visible at `rank`'s current clock. Charges
  /// no virtual time and never parks (the caller keeps the execution
  /// token), so polling loops stay deterministic. Returns false when the
  /// lane is empty or the head message is still in flight.
  bool try_receive(int rank, int src, ChannelTag tag);

  /// Parks `rank` until any message is posted to it (any source, any tag)
  /// or the engine is poisoned. Used by the nbc progress loop once it has
  /// observed a dead peer: a polling rank must not unwind on its own —
  /// a peer parked mid-transfer still holds raw pointers into this rank's
  /// buffers and would resume into a stale memcpy. Blocking here means
  /// peer death surfaces through poisoning exactly like the blocking
  /// path: only once every live rank is parked. Returns normally when a
  /// post arrives (the caller re-polls its lanes).
  void block_for_any_post(int rank);

  /// Synchronizing collective among all nranks: everyone leaves at
  /// max(entry times) + extra_us. The last rank to arrive runs
  /// `data_move` (may be empty) exactly once while all peers are parked —
  /// the hook used by control collectives to shuffle small payloads.
  void rendezvous(int rank, double extra_us,
                  const std::function<void()>& data_move);

private:
  enum class State { kUnstarted, kRunning, kReady, kBlockedRecv,
                     kBlockedColl, kDone };

  /// wait_src sentinel for block_for_any_post: any post to the rank,
  /// regardless of sender or tag, wakes it.
  static constexpr int kAnySource = -2;

  struct RankState {
    State state = State::kUnstarted;
    double clock = 0.0;
    double wake = 0.0;
    bool in_resource = false;
    // Blocked-receive bookkeeping.
    int wait_src = -1;
    int wait_tag = -1;
    double recv_post_time = 0.0;
    double recv_cost = 0.0;
    // Each rank parks on its own condition variable so a token handoff
    // wakes exactly one thread (crucial at 160 simulated ranks).
    std::unique_ptr<std::condition_variable> cv =
        std::make_unique<std::condition_variable>();
  };

  /// Picks the next runnable rank and transfers the token (caller holds
  /// the lock and has already parked itself). Scheduling is gated until
  /// every rank thread has started (virtual time begins uniformly at 0).
  /// Detects deadlock.
  void schedule_next_locked();

  /// Integrates every busy resource to `now` (called before a cross-link
  /// membership change alters global rates).
  void sync_all_resources_locked(double now);

  /// Republishes finish times of every in-flight op (after a rate change).
  void notify_all_resources_locked(const ContendedResource::RerateFn& fn);

  /// The rerate callback bound to this engine's rank table.
  [[nodiscard]] ContendedResource::RerateFn make_rerate_locked();

  /// Parks the calling rank until it is scheduled again; on resume sets
  /// its clock to its wake time. Throws if the engine is poisoned, or
  /// RankKilled when a kill fault's time has been reached.
  void park_and_wait(std::unique_lock<std::mutex>& lk, int rank);

  void check_poisoned_locked() const;

  /// Fires a pending kill fault for `rank` (throws RankKilled) once its
  /// clock has reached the kill time.
  void maybe_kill_locked(int rank);

  /// Completes a pending recovery once every live rank has joined it (also
  /// re-checked from finish(): a rank exiting instead of recovering must
  /// not wedge the survivors' agreement).
  void maybe_complete_recovery_locked();

  /// Applies per-rank CMA delay/errno faults for the op ordinal just
  /// issued (called at the top of cma_transfer, outside the lock).
  void apply_cma_faults(int rank, std::uint64_t op_ordinal);

  ArchSpec spec_;
  int nranks_;

  mutable std::mutex mu_;
  std::vector<RankState> ranks_;
  std::vector<std::unique_ptr<ContendedResource>> resources_;
  ChannelMap channels_;
  std::map<int, int> op_owner_rank_; // in-flight op id -> issuing rank
  int active_ = -1;
  int next_op_id_ = 1;
  int active_cross_ops_ = 0; ///< transfers currently crossing sockets
  int active_node_ops_ = 0;  ///< node-wide memory-streaming transfers
  bool node_domain_enabled_ = false; ///< see enable_shared_node_domain()
  std::uint64_t rerate_events_ = 0; ///< membership-change re-publishes
  int unstarted_ = 0;        ///< rank threads that have not called start()

  bool poisoned_ = false;
  std::string poison_reason_;
  int poison_peer_rank_ = -1; ///< >= 0: poison means "this rank died"
  /// abort() happened: unlike peer-death poisoning this is never cleared
  /// by a recovery, and it wakes ranks parked inside the agreement.
  bool hard_abort_ = false;

  // Fault-injection state (immutable after set_faults).
  FaultInjector faults_;
  std::vector<double> kill_at_;          ///< per rank; +inf = never
  std::vector<bool> rank_killed_;        ///< kill already fired
  std::vector<std::uint64_t> cma_ops_;   ///< per-rank CMA op ordinals
  std::vector<int> dead_ranks_;          ///< ranks killed, in firing order

  // Rendezvous state (single global collective context; Comm-level code
  // guarantees matching order).
  int coll_arrived_ = 0;
  double coll_max_t_ = 0.0;
  std::uint64_t coll_generation_ = 0;

  // Recovery state (survivor agreement; see recover()).
  int recovery_arrived_ = 0;               ///< live ranks inside recover()
  std::uint64_t recovery_generation_ = 0;  ///< bumped per completed shrink
  std::size_t recovered_deaths_ = 0;       ///< dead_ranks_ prefix absorbed
  std::vector<int> recovery_survivors_;    ///< last agreement's participants
  std::uint64_t recovery_purged_ = 0;      ///< last agreement's fence count
};

} // namespace kacc::sim
