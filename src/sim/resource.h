// The contended page-lock resource at the heart of the simulator.
//
// Each process's page table is one resource. Every CMA transfer touching
// that process attaches an operation; an operation drains its pages at rate
// 1 / page_time(c) where c is the number of currently attached operations:
//
//   page_time(c) = lock*gamma(c) + pin
//                + (bytes/pages) * max(beta*mult, c/B_mem, cross*X/QPI)
//
// with X the *global* number of in-flight inter-socket transfers (the
// socket link is one shared pipe — the mechanism behind Fig 10b's
// Ring-Neighbor-1 vs Ring-Neighbor-5 gap). This is the fluid
// (processor-sharing) approximation of the per-page get_user_pages lock
// queue the paper identifies: exact between membership changes, re-rated
// whenever a transfer starts or finishes anywhere that matters. Phase
// times are integrated per interval so Fig 4's breakdown falls out of the
// same machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/breakdown.h"
#include "topo/arch_spec.h"

namespace kacc::sim {

/// One process's page-table lock domain.
class ContendedResource {
public:
  /// Called when an in-flight operation's predicted finish time changes.
  using RerateFn = std::function<void(int op_id, double new_finish)>;

  /// `global_cross_ops` points at the engine's count of in-flight
  /// inter-socket transfers (shared link model). `global_node_ops`
  /// optionally points at the engine's node-wide count of in-flight
  /// memory-streaming transfers: when co-scheduled teams share one
  /// physical memory system (SimEngine::enable_shared_node_domain), the
  /// DRAM bandwidth share is max(c_total, *global_node_ops) — streams
  /// from *other* teams' resources still eat this node's bandwidth. A
  /// counter that stays 0 leaves every rate unchanged.
  ContendedResource(const ArchSpec* spec, const int* global_cross_ops,
                    const int* global_node_ops = nullptr);

  /// Attaches an operation at virtual time `now`; returns its predicted
  /// finish time. `with_copy` false models a lock+pin-only probe
  /// (Table III's T3 configuration); `cross` marks an inter-socket
  /// transfer. `rerate` is invoked for *other* ops whose finish moves.
  struct OpTraits {
    double beta_mult = 1.0;
    bool with_copy = true;
    bool cross = false;
    /// Lockless ops (shared-memory copies) skip the page-table lock/pin
    /// and do not inflate gamma for CMA ops on the same process.
    bool lockless = false;
    /// Cache-resident copies are exempt from the DRAM bandwidth share.
    bool cache_resident = false;
  };

  double begin(int op_id, double now, std::uint64_t pages,
               std::uint64_t bytes, const OpTraits& traits,
               const RerateFn& rerate);

  /// Detaches a finished operation at time `now` (its pages must have
  /// drained) and returns its accumulated phase breakdown. Remaining ops
  /// are re-rated through `rerate`.
  Breakdown end(int op_id, double now, const RerateFn& rerate);

  /// Force-detaches an operation whose issuer died mid-transfer (recovery
  /// epoch fence): the op vanishes with pages still outstanding and no
  /// breakdown; survivors are re-rated. No-op when the op is not attached.
  /// Returns true iff an op was removed.
  bool abandon(int op_id, double now, const RerateFn& rerate);

  /// Integrates all attached ops forward to `now` at current rates. Called
  /// by the engine before a global rate change (cross-link membership).
  void sync_now(double now);

  /// Recomputes and publishes every attached op's finish time. Called by
  /// the engine after a global rate change.
  void notify_finishes(const RerateFn& rerate);

  [[nodiscard]] bool idle() const { return ops_.empty(); }
  [[nodiscard]] int concurrency() const { return static_cast<int>(ops_.size()); }

private:
  struct Op {
    int id = 0;
    double pages_rem = 0.0;
    double bytes_per_page = 0.0; ///< actual payload per page (last page
                                 ///< may be partial — matters for 64KB
                                 ///< pages)
    OpTraits traits;
    Breakdown bd;
  };

  /// Ops holding the page-table lock (gamma's concurrency argument).
  [[nodiscard]] int lock_concurrency() const;

  /// Per-page service time for `op` given lock and total concurrency.
  [[nodiscard]] double page_time(const Op& op, int c_lock,
                                 int c_total) const;

  /// Advances all attached ops from last_t_ to `t`, integrating phase time.
  void sync_to(double t);

  /// Recomputes finish times after a membership change and notifies.
  void notify_all_finishes(const RerateFn& rerate, int except_id);

  const ArchSpec* spec_;
  const int* global_cross_ops_;
  const int* global_node_ops_;
  std::vector<Op> ops_;
  double last_t_ = 0.0;
};

} // namespace kacc::sim
