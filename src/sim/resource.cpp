#include "sim/resource.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace kacc::sim {

ContendedResource::ContendedResource(const ArchSpec* spec,
                                     const int* global_cross_ops,
                                     const int* global_node_ops)
    : spec_(spec), global_cross_ops_(global_cross_ops),
      global_node_ops_(global_node_ops) {
  KACC_CHECK(spec != nullptr && global_cross_ops != nullptr);
}

int ContendedResource::lock_concurrency() const {
  int c = 0;
  for (const Op& op : ops_) {
    if (!op.traits.lockless) {
      ++c;
    }
  }
  return c;
}

double ContendedResource::page_time(const Op& op, int c_lock,
                                    int c_total) const {
  double lock = 0.0;
  double pin = 0.0;
  if (!op.traits.lockless) {
    lock = spec_->lock_us * spec_->gamma_at(c_lock);
    pin = spec_->pin_us;
  }
  double copy = 0.0;
  if (op.traits.with_copy) {
    double beta = spec_->beta_us_per_byte() * op.traits.beta_mult;
    if (!op.traits.cache_resident) {
      int streams = c_total;
      if (global_node_ops_ != nullptr) {
        // Shared node memory domain: co-scheduled teams' streams all hit
        // the same DRAM controllers regardless of which team issued them.
        streams = std::max(streams, *global_node_ops_);
      }
      beta = std::max(beta, static_cast<double>(streams) /
                                spec_->mem_bw_total_Bus);
    }
    if (op.traits.cross) {
      // All concurrent inter-socket transfers share one link.
      beta = std::max(beta, static_cast<double>(*global_cross_ops_) /
                                spec_->inter_socket_bw_Bus);
    }
    copy = op.bytes_per_page * beta;
  }
  return lock + pin + copy;
}

void ContendedResource::sync_to(double t) {
  KACC_CHECK_MSG(t >= last_t_ - 1e-6, "resource time went backwards");
  const double dt = std::max(0.0, t - last_t_);
  if (dt > 0.0 && !ops_.empty()) {
    const int c_lock = lock_concurrency();
    const int c_total = concurrency();
    const double lock_rate = spec_->lock_us * spec_->gamma_at(c_lock);
    for (Op& op : ops_) {
      const double pt = page_time(op, c_lock, c_total);
      const double dp = std::min(op.pages_rem, dt / pt);
      op.pages_rem -= dp;
      if (!op.traits.lockless) {
        op.bd.lock_us += dp * lock_rate;
        op.bd.pin_us += dp * spec_->pin_us;
        if (op.traits.with_copy) {
          op.bd.copy_us += dp * (pt - lock_rate - spec_->pin_us);
        }
      } else if (op.traits.with_copy) {
        op.bd.copy_us += dp * pt;
      }
    }
  }
  last_t_ = std::max(last_t_, t);
}

void ContendedResource::sync_now(double now) { sync_to(now); }

void ContendedResource::notify_finishes(const RerateFn& rerate) {
  notify_all_finishes(rerate, -1);
}

void ContendedResource::notify_all_finishes(const RerateFn& rerate,
                                            int except_id) {
  const int c_lock = lock_concurrency();
  const int c_total = concurrency();
  for (const Op& op : ops_) {
    if (op.id == except_id) {
      continue;
    }
    const double finish =
        last_t_ + op.pages_rem * page_time(op, c_lock, c_total);
    rerate(op.id, finish);
  }
}

double ContendedResource::begin(int op_id, double now, std::uint64_t pages,
                                std::uint64_t bytes, const OpTraits& traits,
                                const RerateFn& rerate) {
  KACC_CHECK_MSG(pages > 0, "resource op needs at least one page");
  sync_to(now);
  Op op;
  op.id = op_id;
  op.pages_rem = static_cast<double>(pages);
  op.bytes_per_page = static_cast<double>(bytes) / static_cast<double>(pages);
  op.traits = traits;
  ops_.push_back(op);

  const double finish =
      now + ops_.back().pages_rem *
                page_time(ops_.back(), lock_concurrency(), concurrency());
  notify_all_finishes(rerate, op_id);
  return finish;
}

Breakdown ContendedResource::end(int op_id, double now,
                                 const RerateFn& rerate) {
  sync_to(now);
  auto it = std::find_if(ops_.begin(), ops_.end(),
                         [&](const Op& op) { return op.id == op_id; });
  KACC_CHECK_MSG(it != ops_.end(), "resource end: unknown op");
  KACC_CHECK_MSG(it->pages_rem <= 1e-3,
                 "resource end: op still has pages outstanding");
  Breakdown bd = it->bd;
  ops_.erase(it);
  notify_all_finishes(rerate, op_id);
  return bd;
}

bool ContendedResource::abandon(int op_id, double now,
                                const RerateFn& rerate) {
  auto it = std::find_if(ops_.begin(), ops_.end(),
                         [&](const Op& op) { return op.id == op_id; });
  if (it == ops_.end()) {
    return false;
  }
  // The dead issuer may have synced this resource past the survivors'
  // clocks; never rewind resource time.
  sync_to(std::max(now, last_t_));
  it = std::find_if(ops_.begin(), ops_.end(),
                    [&](const Op& op) { return op.id == op_id; });
  ops_.erase(it);
  notify_all_finishes(rerate, op_id);
  return true;
}

} // namespace kacc::sim
