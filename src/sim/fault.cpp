#include "sim/fault.h"

#include "common/error.h"

namespace kacc::sim {

FaultInjector& FaultInjector::kill_rank(int rank, double at_us) {
  KACC_CHECK_MSG(rank >= 0, "kill_rank: bad rank");
  KACC_CHECK_MSG(at_us >= 0.0, "kill_rank: negative time");
  kills.push_back(Kill{rank, at_us});
  return *this;
}

FaultInjector& FaultInjector::fail_cma(int rank, std::uint64_t kth, int err) {
  KACC_CHECK_MSG(rank >= 0, "fail_cma: bad rank");
  KACC_CHECK_MSG(kth >= 1, "fail_cma: op ordinals are 1-based");
  KACC_CHECK_MSG(err > 0, "fail_cma: errno must be positive");
  cma_errnos.push_back(CmaErrno{rank, kth, err});
  return *this;
}

FaultInjector& FaultInjector::delay_cma(int rank, std::uint64_t kth,
                                        double delay_us) {
  KACC_CHECK_MSG(rank >= 0, "delay_cma: bad rank");
  KACC_CHECK_MSG(kth >= 1, "delay_cma: op ordinals are 1-based");
  KACC_CHECK_MSG(delay_us >= 0.0, "delay_cma: negative delay");
  cma_delays.push_back(CmaDelay{rank, kth, delay_us});
  return *this;
}

} // namespace kacc::sim
