// Point-to-point message channels inside the simulator: carry real payload
// bytes (for functional correctness) stamped with the virtual time at which
// they become visible to the receiver.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace kacc::sim {

/// Channel classes. Signals are the paper's 0-byte sync messages; Ctrl
/// carries address exchanges; Data carries two-copy shm payloads. Tags
/// >= kNbcTagBase are tagged signal lanes for nonblocking collectives
/// (one lane per kacc::nbc request slot).
enum class ChannelTag : int { kSignal = 0, kCtrl = 1, kData = 2 };

inline constexpr int kNbcTagBase = 3;

/// Channel tag of nonblocking-collective signal lane `t` (t >= 0).
[[nodiscard]] inline ChannelTag nbc_signal_tag(int t) {
  return static_cast<ChannelTag>(kNbcTagBase + t);
}

struct Message {
  std::vector<std::byte> payload;
  double avail_us = 0.0; ///< virtual time the message becomes receivable
};

/// Keyed FIFO queues for (src, dst, tag) triples.
class ChannelMap {
public:
  void push(int src, int dst, ChannelTag tag, Message msg);

  /// True when a message is queued for (src, dst, tag).
  [[nodiscard]] bool has(int src, int dst, ChannelTag tag) const;

  /// Pops the head message; precondition: has() is true.
  Message pop(int src, int dst, ChannelTag tag);

  /// Returns a popped message to the head of its queue (peek support).
  void push_front(int src, int dst, ChannelTag tag, Message msg);

  /// Total queued messages (drained-state assertions in tests).
  [[nodiscard]] std::size_t size() const;

  /// Epoch fence: discards every queued message (stale posts from the
  /// retired team generation, including any from dead ranks). Returns the
  /// number quarantined.
  std::size_t purge_all();

private:
  using Key = std::tuple<int, int, int>;
  std::map<Key, std::deque<Message>> queues_;
};

} // namespace kacc::sim
