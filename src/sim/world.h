// Thread-team launcher for the simulation engine: spawns one host thread
// per simulated rank, runs the body, propagates the first failure, and
// reports final virtual clocks.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace kacc::sim {

/// What happened to one simulated rank during a (possibly faulty) run.
struct RankOutcome {
  enum class Kind {
    kOk,       ///< body returned normally
    kKilled,   ///< removed by an injected kill fault
    kPeerDied, ///< raised PeerDiedError (failed_rank says who)
    kDeadlock, ///< raised DeadlockError
    kError,    ///< any other exception escaped the body
  };
  Kind kind = Kind::kOk;
  std::string message;
  int failed_rank = -1; ///< peer blamed by a kPeerDied outcome
};

struct WorldResult {
  /// Final virtual clock of each rank (us).
  std::vector<double> final_clock_us;
  /// max over ranks — the virtual makespan of the run.
  double makespan_us = 0.0;
  /// Per-rank outcome; only populated by run_world_outcomes.
  std::vector<RankOutcome> outcomes;
};

/// Runs `body(engine, rank)` for every rank on its own thread under the
/// engine's cooperative scheduler. start()/finish() are called by the
/// world; bodies only use the timed primitives. Rethrows the first body
/// exception after all threads join. An injected kill is not itself an
/// error, but the PeerDiedError it causes in the survivors is.
WorldResult run_world(SimEngine& engine,
                      const std::function<void(SimEngine&, int)>& body);

/// Fault-tolerant variant: never rethrows. Every rank's fate (ok, killed,
/// peer-died, deadlocked, errored) is reported in WorldResult::outcomes —
/// the observation point for fault-injection tests.
WorldResult
run_world_outcomes(SimEngine& engine,
                   const std::function<void(SimEngine&, int)>& body);

} // namespace kacc::sim
