// Thread-team launcher for the simulation engine: spawns one host thread
// per simulated rank, runs the body, propagates the first failure, and
// reports final virtual clocks.
#pragma once

#include <functional>
#include <vector>

#include "sim/engine.h"

namespace kacc::sim {

struct WorldResult {
  /// Final virtual clock of each rank (us).
  std::vector<double> final_clock_us;
  /// max over ranks — the virtual makespan of the run.
  double makespan_us = 0.0;
};

/// Runs `body(engine, rank)` for every rank on its own thread under the
/// engine's cooperative scheduler. start()/finish() are called by the
/// world; bodies only use the timed primitives. Rethrows the first body
/// exception after all threads join.
WorldResult run_world(SimEngine& engine,
                      const std::function<void(SimEngine&, int)>& body);

} // namespace kacc::sim
