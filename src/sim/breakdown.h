// Per-phase time accounting of a simulated CMA operation (Fig 4's stack).
#pragma once

namespace kacc::sim {

struct Breakdown {
  double syscall_us = 0.0;
  double permcheck_us = 0.0;
  double lock_us = 0.0;
  double pin_us = 0.0;
  double copy_us = 0.0;

  [[nodiscard]] double total_us() const {
    return syscall_us + permcheck_us + lock_us + pin_us + copy_us;
  }

  Breakdown& operator+=(const Breakdown& o) {
    syscall_us += o.syscall_us;
    permcheck_us += o.permcheck_us;
    lock_us += o.lock_us;
    pin_us += o.pin_us;
    copy_us += o.copy_us;
    return *this;
  }
};

} // namespace kacc::sim
