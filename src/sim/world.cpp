#include "sim/world.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace kacc::sim {
namespace {

WorldResult run_world_impl(SimEngine& engine,
                           const std::function<void(SimEngine&, int)>& body,
                           bool rethrow) {
  const int n = engine.nranks();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(n));

  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      RankOutcome& out = outcomes[static_cast<std::size_t>(rank)];
      bool started = false;
      try {
        engine.start(rank);
        started = true;
        body(engine, rank);
        engine.finish(rank);
      } catch (const RankKilled&) {
        // An injected kill removed this rank: the engine already marked it
        // done. Not an error of the rank body.
        out.kind = RankOutcome::Kind::kKilled;
        out.message = "killed by fault injection";
      } catch (const PeerDiedError& e) {
        // A peer's death stalled this rank; the engine surfaced it from a
        // blocking primitive. Record, don't re-poison.
        out.kind = RankOutcome::Kind::kPeerDied;
        out.message = e.what();
        out.failed_rank = e.failed_rank();
        if (started) {
          engine.finish(rank);
        }
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      } catch (const DeadlockError& e) {
        // Poisoned engine: some rank already recorded the root cause (or
        // this is the deadlock itself, recorded by the engine). Unwind.
        out.kind = RankOutcome::Kind::kDeadlock;
        out.message = e.what();
        if (started) {
          engine.finish(rank);
        }
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      } catch (const std::exception& e) {
        out.kind = RankOutcome::Kind::kError;
        out.message = e.what();
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        engine.abort("rank " + std::to_string(rank) + " threw: " + e.what());
        if (started) {
          engine.finish(rank);
        }
      } catch (...) {
        out.kind = RankOutcome::Kind::kError;
        out.message = "unknown exception";
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        engine.abort("rank " + std::to_string(rank) + " threw");
        if (started) {
          engine.finish(rank);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (rethrow && first_error) {
    std::rethrow_exception(first_error);
  }

  WorldResult result;
  result.final_clock_us.resize(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    result.final_clock_us[static_cast<std::size_t>(rank)] = engine.now(rank);
    result.makespan_us =
        std::max(result.makespan_us,
                 result.final_clock_us[static_cast<std::size_t>(rank)]);
  }
  result.outcomes = std::move(outcomes);
  return result;
}

} // namespace

WorldResult run_world(SimEngine& engine,
                      const std::function<void(SimEngine&, int)>& body) {
  return run_world_impl(engine, body, /*rethrow=*/true);
}

WorldResult
run_world_outcomes(SimEngine& engine,
                   const std::function<void(SimEngine&, int)>& body) {
  return run_world_impl(engine, body, /*rethrow=*/false);
}

} // namespace kacc::sim
