#include "sim/world.h"

#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace kacc::sim {

WorldResult run_world(SimEngine& engine,
                      const std::function<void(SimEngine&, int)>& body) {
  const int n = engine.nranks();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      bool started = false;
      try {
        engine.start(rank);
        started = true;
        body(engine, rank);
        engine.finish(rank);
      } catch (const DeadlockError&) {
        // Poisoned engine: some rank already recorded the root cause (or
        // this is the deadlock itself, recorded by the engine). Unwind.
        if (started) {
          engine.finish(rank);
        }
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        engine.abort("rank " + std::to_string(rank) + " threw");
        if (started) {
          engine.finish(rank);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  WorldResult result;
  result.final_clock_us.resize(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    result.final_clock_us[static_cast<std::size_t>(rank)] = engine.now(rank);
    result.makespan_us =
        std::max(result.makespan_us,
                 result.final_clock_us[static_cast<std::size_t>(rank)]);
  }
  return result;
}

} // namespace kacc::sim
