#include "sim/channel.h"

#include "common/error.h"

namespace kacc::sim {

void ChannelMap::push(int src, int dst, ChannelTag tag, Message msg) {
  queues_[{src, dst, static_cast<int>(tag)}].push_back(std::move(msg));
}

void ChannelMap::push_front(int src, int dst, ChannelTag tag, Message msg) {
  queues_[{src, dst, static_cast<int>(tag)}].push_front(std::move(msg));
}

bool ChannelMap::has(int src, int dst, ChannelTag tag) const {
  auto it = queues_.find({src, dst, static_cast<int>(tag)});
  return it != queues_.end() && !it->second.empty();
}

Message ChannelMap::pop(int src, int dst, ChannelTag tag) {
  auto it = queues_.find({src, dst, static_cast<int>(tag)});
  KACC_CHECK_MSG(it != queues_.end() && !it->second.empty(),
                 "channel pop on empty queue");
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  return msg;
}

std::size_t ChannelMap::size() const {
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) {
    n += q.size();
  }
  return n;
}

std::size_t ChannelMap::purge_all() {
  const std::size_t n = size();
  queues_.clear();
  return n;
}

} // namespace kacc::sim
