// The per-rank nbc progress engine. Parked in Comm::nbc_state(), so each
// communicator owns exactly one engine and its request/lane bookkeeping.
//
// State machine per request:
//
//   compiled --start()--> active --[pc reaches end]--> completed
//      ^                                                  |
//      +------------- start() (persistent only) ----------+
//
// A progress pass (progress_once) visits every active request starting at
// a rotating offset. Control/local steps run greedily; a tagged wait that
// cannot be consumed parks the request until the signal arrives; a data
// step runs at most once per request per pass and only when the admission
// governor's per-source in-flight cap allows it. Blocking waits
// (progress_until) back off through Comm::nbc_yield, which performs
// dead-peer detection in both runtimes and advances virtual time in the
// sim; a native deadline (Comm::nbc_deadline_us) and an idle-pass backstop
// convert a wedged team into TimeoutError/DeadlockError.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nbc/nbc.h"
#include "nbc/schedule.h"
#include "runtime/comm.h"

namespace kacc::nbc::detail {

struct RequestState {
  std::unique_ptr<Schedule> sched;
  std::uint64_t id = 0;
  int tag = -1; ///< the request's counting signal lane
  bool persistent = false;
  bool started = false;
  bool completed = false;
  bool consumed = false; ///< returned by wait_any; reset by start()
  bool governed = true;
  int cap = 1; ///< per-source in-flight cap while this request issues
  double start_ts = 0.0;
  char label[16] = {}; ///< e.g. "ibcast#3"; span tag of the lifetime span
  std::int64_t bytes = -1;
  int root = -1;
  /// Torn down by a team shrink: the schedule references the retired
  /// epoch. test/wait raise PeerDiedError; start() of a persistent
  /// request re-homes it through `recompile`.
  bool poisoned = false;
  int poison_rank = -1; ///< the dead rank blamed for the teardown
  /// Recompiles the schedule against a successor team after a shrink
  /// (persistent requests only; set by the nbc front end at init). Args:
  /// the successor comm and the translated root (-1 for rootless).
  std::function<std::unique_ptr<Schedule>(Comm&, int)> recompile;
  /// Execution comm after a re-home (non-owning: the successor returned
  /// by Comm::shrink, which must outlive the request). nullptr = the
  /// engine's own comm.
  Comm* exec_comm = nullptr;
  /// Step-log support: timestamp of the first failed try on the tagged
  /// wait the request is currently parked at, < 0 when not parked. The
  /// consumed wait is logged as [wait_since, now] so the critical-path
  /// profiler can hop to the matching signal.
  double wait_since = -1.0;
};

class Engine final : public Comm::NbcState {
public:
  explicit Engine(Comm& comm) : comm_(&comm) {}

  /// The communicator's engine, installing one on first use.
  static Engine& for_comm(Comm& comm);

  /// Allocates the next request's signal lane. Called once per init in
  /// SPMD order, so the round-robin sequence (and hence the lane) agrees
  /// across ranks without communication. Throws InvalidArgument when the
  /// lane's previous owner is still outstanding.
  int claim_lane();

  /// Registers a compiled schedule as a request owning lane `tag`.
  std::shared_ptr<RequestState> adopt(std::unique_ptr<Schedule> sched,
                                      int tag, const Options& nopts,
                                      const char* kind, std::int64_t bytes,
                                      int root, bool persistent);

  /// Activates a request (resetting its program counter — persistent
  /// restart). Throws InvalidArgument when it is already active.
  void start(const std::shared_ptr<RequestState>& r);

  /// One pass over all active requests; returns true iff any step ran.
  bool progress_once();

  /// Progresses until `done()` holds; yields, enforces the native
  /// deadline, and backstops against silent deadlock.
  void progress_until(const std::function<bool()>& done);

  /// Recovery hook (Comm::NbcState): poisons every request compiled
  /// against the retired team epoch — in-flight ones drain to a
  /// poisoned-but-safe state with no leaked admission credits or orphaned
  /// lane pairings — and records the successor so persistent requests
  /// recompile against the shrunken team on their next start().
  void on_team_shrink(Comm* successor) override;

  [[nodiscard]] Comm& comm() const { return *comm_; }

  /// Rotation counter for wait_any fairness (owned here so it is shared
  /// by every wait_any call on this communicator).
  std::uint64_t any_rr_ = 0;

private:
  void complete(const std::shared_ptr<RequestState>& r);

  Comm* comm_;
  Comm* successor_ = nullptr; ///< survivor team after a shrink (non-owning)
  std::vector<std::shared_ptr<RequestState>> active_;
  std::array<std::weak_ptr<RequestState>, Comm::kNbcTags> lane_owner_;
  std::uint64_t next_seq_ = 0; ///< lane round-robin (SPMD-synchronized)
  std::uint64_t next_id_ = 1;
  std::uint64_t rr_ = 0; ///< progress-pass rotation
  /// When >= 0: the timestamp the engine first became admission-stalled
  /// (every pass since deferred a data step and ran nothing else). The
  /// stall's total duration lands in the kNbcAdmissionStall histogram at
  /// the next productive pass.
  double stall_since_ = -1.0;
};

} // namespace kacc::nbc::detail
