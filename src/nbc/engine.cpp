#include "nbc/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.h"
#include "nbc/governor.h"
#include "runtime/sub_comm.h"

namespace kacc::nbc::detail {
namespace {

/// Backstop for silent deadlock (a missing signal with every peer alive):
/// after this many consecutive unproductive passes — far beyond any real
/// schedule's latency at the yield backoff's longest quantum — give up.
constexpr int kIdlePassLimit = 1'000'000;

} // namespace

Engine& Engine::for_comm(Comm& comm) {
  auto* st = dynamic_cast<Engine*>(comm.nbc_state());
  if (st == nullptr) {
    auto owned = std::make_unique<Engine>(comm);
    st = owned.get();
    comm.set_nbc_state(std::move(owned));
  }
  return *st;
}

int Engine::claim_lane() {
  const int lane = static_cast<int>(
      next_seq_++ % static_cast<std::uint64_t>(Comm::kNbcTags));
  const std::shared_ptr<RequestState> owner =
      lane_owner_[static_cast<std::size_t>(lane)].lock();
  // A lane is free when its previous owner finished (non-persistent) or
  // was torn down by a shrink without a re-home path (poisoned
  // non-persistent requests can only raise PeerDiedError from wait).
  if (owner != nullptr && !(owner->completed && !owner->persistent) &&
      !(owner->poisoned && !owner->persistent)) {
    throw InvalidArgument(
        "nbc: too many outstanding requests (all " +
        std::to_string(Comm::kNbcTags) +
        " signal lanes are held by active or persistent requests)");
  }
  return lane;
}

std::shared_ptr<RequestState> Engine::adopt(std::unique_ptr<Schedule> sched,
                                            int tag, const Options& nopts,
                                            const char* kind,
                                            std::int64_t bytes, int root,
                                            bool persistent) {
  KACC_CHECK(sched != nullptr && tag >= 0 && tag < Comm::kNbcTags);
  auto r = std::make_shared<RequestState>();
  r->sched = std::move(sched);
  r->id = next_id_++;
  r->tag = tag;
  r->persistent = persistent;
  r->governed = nopts.governed;
  r->bytes = bytes;
  r->root = root;
  std::snprintf(r->label, sizeof(r->label), "%s#%llu", kind,
                static_cast<unsigned long long>(r->id));
  if (nopts.admission_cap > 0) {
    r->cap = nopts.admission_cap;
  } else {
    // The governed per-source concurrency optimum for this request's
    // typical transfer grain.
    std::uint64_t grain = static_cast<std::uint64_t>(
        nopts.chunk_bytes > 0 ? nopts.chunk_bytes : bytes);
    if (bytes > 0) {
      grain = std::min(grain, static_cast<std::uint64_t>(bytes));
    }
    r->cap = optimal_admission_cap(comm_->arch(), grain, comm_->size());
    // When the drift monitor has declared the model stale, re-derive the
    // cap from observed T_cma instead; keep the model answer until the
    // monitor has at least one full window of data for some candidate c.
    const obs::DriftMonitor& drift = comm_->recorder().drift;
    if (drift.bound() && drift.stale()) {
      const int oc = optimal_admission_cap_observed(drift, comm_->arch(),
                                                    grain, comm_->size());
      if (oc >= 1) {
        r->cap = oc;
      }
    }
  }
  lane_owner_[static_cast<std::size_t>(tag)] = r;
  return r;
}

void Engine::start(const std::shared_ptr<RequestState>& r) {
  KACC_CHECK(r != nullptr && r->sched != nullptr);
  if (r->started && !r->completed && !r->poisoned) {
    throw InvalidArgument("nbc start: request is already active");
  }
  if (r->poisoned) {
    // Re-home against the shrunken team: recompile the schedule with the
    // root translated to its survivor rank. Collective — every survivor
    // restarts the request in the same SPMD order (the recompile's eager
    // address exchange runs over the successor comm).
    if (successor_ == nullptr || !r->recompile) {
      throw PeerDiedError(
          std::string("nbc start: request '") + r->label +
              "' was torn down by a peer failure and cannot be re-homed",
          r->poison_rank);
    }
    int new_root = r->root;
    if (new_root >= 0) {
      auto* view = dynamic_cast<SubComm*>(successor_);
      new_root = view != nullptr ? view->view_rank_of(r->root) : r->root;
      if (new_root < 0) {
        throw PeerDiedError(
            std::string("nbc start: request '") + r->label +
                "' is rooted at a rank that died in the shrink",
            r->root);
      }
    }
    r->sched = r->recompile(*successor_, new_root);
    r->root = new_root;
    r->exec_comm = successor_;
    r->poisoned = false;
    r->poison_rank = -1;
  }
  r->sched->pc = 0;
  r->started = true;
  r->completed = false;
  r->consumed = false;
  r->start_ts = comm_->now_us();
  active_.push_back(r);
  obs::Recorder& rec = comm_->recorder();
  rec.counters.add(obs::Counter::kNbcRequestsStarted);
  rec.counters.max_update(obs::Counter::kNbcRequestsHwm, active_.size());
  rec.flight_event(obs::FlightKind::kNbcStart, r->root, r->bytes, r->label);
}

void Engine::complete(const std::shared_ptr<RequestState>& r) {
  r->completed = true;
  active_.erase(std::remove(active_.begin(), active_.end(), r),
                active_.end());
  obs::Recorder& rec = comm_->recorder();
  rec.flight_event(obs::FlightKind::kNbcComplete, r->root, r->bytes,
                   r->label);
  if (rec.tracing()) {
    // The request-lifetime span, emitted by hand because the interval is
    // held open across many progress passes (obs::Span is scope-bound).
    obs::TraceRecord tr;
    tr.ts_us = r->start_ts;
    tr.dur_us = comm_->now_us() - r->start_ts;
    tr.bytes = r->bytes;
    tr.name = static_cast<std::uint32_t>(obs::SpanName::kNbcRequest);
    tr.peer = r->root;
    std::snprintf(tr.tag, sizeof(tr.tag), "%s", r->label);
    rec.sink->emit(tr);
  }
}

bool Engine::progress_once() {
  if (active_.empty()) {
    return false;
  }
  // Snapshot: complete() edits active_, and the rotation keeps one
  // runnable request from starving the others across passes.
  const std::vector<std::shared_ptr<RequestState>> snap = active_;
  const std::size_t n = snap.size();
  const std::size_t first = static_cast<std::size_t>(rr_++) % n;
  obs::Recorder& rec = comm_->recorder();
  auto& ctrs = rec.counters;
  bool progressed = false;
  bool deferred = false;

  for (std::size_t i = 0; i < n; ++i) {
    const std::shared_ptr<RequestState>& r = snap[(first + i) % n];
    if (r->completed || r->poisoned) {
      continue;
    }
    // Re-homed persistent requests execute against the successor team;
    // everything else against this engine's comm.
    Comm& rcomm = r->exec_comm != nullptr ? *r->exec_comm : *comm_;
    Schedule& s = *r->sched;
    while (!s.done()) {
      const Step& st = s.steps[s.pc];
      // Spliced two-level steps carry sub-team-local peers: the view
      // translates them for the tagged lanes and the shared in-flight
      // counts, which are keyed by parent rank.
      Comm& scomm = step_comm(rcomm, s, st);
      if (st.kind == StepKind::kWaitSignal && st.tag >= 0) {
        if (!scomm.nbc_try_wait(st.peer, st.tag)) {
          if (rec.step_logging() && r->wait_since < 0.0) {
            r->wait_since = comm_->now_us();
          }
          break; // parked until the peer's signal lands
        }
        if (rec.step_logging()) {
          // Every consumed tagged wait is logged (zero-length when the
          // signal was already pending) so wait/signal occurrence counts
          // stay aligned for critical-path matching.
          const double now = comm_->now_us();
          rec.log_step(obs::StepCat::kWait,
                       r->wait_since >= 0.0 ? r->wait_since : now, now,
                       scomm.global_rank_of(st.peer), st.tag, 0);
        }
        r->wait_since = -1.0;
        ++s.pc;
        progressed = true;
        continue;
      }
      if (is_data_step(st.kind)) {
        // The node arbiter's lease clamps the per-team cap; re-read every
        // pass so a mid-run revocation/re-lease takes effect immediately.
        // quota 0 = no lease; a lease can only tighten the team's cap.
        int cap = r->cap;
        const int quota = scomm.node_quota();
        if (r->governed && quota > 0 && quota < cap) {
          cap = quota;
        }
        if (r->governed && scomm.nbc_inflight(st.peer) >= cap) {
          ctrs.add(obs::Counter::kNbcStepsDeferred);
          if (cap < r->cap) {
            ctrs.add(obs::Counter::kNodeQuotaClamped);
          }
          deferred = true;
          break;
        }
        scomm.nbc_inflight_add(st.peer, +1);
        const int inflight = scomm.nbc_inflight(st.peer);
        ctrs.max_update(obs::Counter::kNbcInflightHwm,
                        static_cast<std::uint64_t>(inflight));
        rec.flight_event(obs::FlightKind::kStepIssued, st.peer,
                         static_cast<std::int64_t>(st.bytes), r->label);
        const double t0 = comm_->now_us();
        try {
          // The live shared in-flight count at this source is the believed
          // concurrency for the duration of the step.
          obs::ConcHintScope conc(rec, inflight);
          execute_step(rcomm, s, st);
        } catch (...) {
          scomm.nbc_inflight_add(st.peer, -1);
          throw;
        }
        scomm.nbc_inflight_add(st.peer, -1);
        rec.hists.record_us(obs::Hist::kNbcStepLatency,
                            comm_->now_us() - t0);
        rec.flight_event(obs::FlightKind::kStepCompleted, st.peer,
                         static_cast<std::int64_t>(st.bytes), r->label);
        ++s.pc;
        ctrs.add(obs::Counter::kNbcStepsIssued);
        progressed = true;
        break; // one data step per request per pass, then re-admit
      }
      // Control-plane and local steps run greedily.
      execute_step(rcomm, s, st);
      ++s.pc;
      progressed = true;
    }
    if (s.done()) {
      complete(r);
    }
  }
  if (progressed) {
    if (stall_since_ >= 0.0) {
      // The stall ended: its whole duration is one histogram sample.
      rec.hists.record_us(obs::Hist::kNbcAdmissionStall,
                          comm_->now_us() - stall_since_);
      stall_since_ = -1.0;
    }
  } else if (deferred) {
    ctrs.add(obs::Counter::kNbcAdmissionStalls);
    if (stall_since_ < 0.0) {
      stall_since_ = comm_->now_us();
    }
  }
  return progressed;
}

void Engine::on_team_shrink(Comm* successor) {
  successor_ = successor;
  // Blame the lowest-numbered rank absent from the survivor view.
  int dead = -1;
  auto* view = dynamic_cast<SubComm*>(successor);
  if (view != nullptr) {
    for (int r = 0; r < comm_->size(); ++r) {
      if (view->view_rank_of(r) < 0) {
        dead = r;
        break;
      }
    }
  }
  obs::Recorder& rec = comm_->recorder();
  for (auto& weak : lane_owner_) {
    const std::shared_ptr<RequestState> r = weak.lock();
    if (r == nullptr || r->poisoned) {
      continue;
    }
    r->poisoned = true;
    r->poison_rank = dead;
    if (r->started && !r->completed) {
      rec.counters.add(obs::Counter::kNbcPoisonedRequests);
      rec.flight_event(obs::FlightKind::kNbcPoisoned, dead, r->bytes,
                       r->label);
    }
  }
  // In-flight requests drain to poisoned-but-safe: out of the active set
  // (no further steps run against the retired epoch) with no admission
  // credits held — a step that threw already returned its credit in
  // progress_once's unwind path, and the comm's shrink reset the shared
  // in-flight counts.
  active_.clear();
  stall_since_ = -1.0;
}

void Engine::progress_until(const std::function<bool()>& done) {
  int idle = 0;
  double last_progress_us = comm_->now_us();
  while (!done()) {
    if (progress_once()) {
      idle = 0;
      last_progress_us = comm_->now_us();
      continue;
    }
    ++idle;
    const double deadline_us = comm_->nbc_deadline_us();
    if (deadline_us > 0 &&
        comm_->now_us() - last_progress_us > deadline_us) {
      throw TimeoutError("nbc progress: no progress before the deadline "
                         "(peer stuck or request never started?)");
    }
    if (idle > kIdlePassLimit) {
      throw DeadlockError(
          "nbc progress: no progress after " +
          std::to_string(kIdlePassLimit) +
          " idle passes; outstanding requests cannot complete");
    }
    comm_->nbc_yield(idle);
  }
}

} // namespace kacc::nbc::detail
