// Cross-operation contention-aware admission: the progress engine caps the
// aggregate number of in-flight data-plane steps against any one source
// process, across every outstanding request, at the model's per-arch
// optimum. The argument mirrors the paper's throttling (§IV-A3) lifted
// from one collective to the whole node: gamma_c in the cost model
// alpha + n*beta + (n/s)*l*gamma_c depends on the TOTAL number of
// concurrent readers/writers of one process's pages — the kernel
// serializes them on that process's page-table lock regardless of which
// collective issued them. A per-request throttle therefore under-throttles
// the moment two requests target the same source; the governor enforces
// the optimum on the shared count instead (Comm::nbc_inflight).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/drift.h"
#include "topo/arch_spec.h"

namespace kacc::nbc {

/// One co-scheduled team's standing demand, as seen by the node arbiter:
/// its rank count (worst-case per-source load is ranks-1 transfers) and
/// its fair-share weight (>= 1).
struct TenantDemand {
  int ranks = 0;
  int weight = 1;
};

/// The admission cap c*: argmin over the tuner's throttle candidates of
/// ceil((p-1)/c) * T_cma(chunk_bytes, c) — the makespan of draining p-1
/// chunk transfers from one source in waves of c, each paying the model's
/// c-way contention factor.
[[nodiscard]] int optimal_admission_cap(const ArchSpec& s,
                                        std::uint64_t chunk_bytes, int p);

/// Model cost (us) of draining `transfers` chunk moves against one source
/// with at most `cap` in flight. Exposed so benchmarks/tests can show the
/// governed-vs-naive gap with the same arithmetic the governor uses.
[[nodiscard]] double drain_cost_us(const ArchSpec& s,
                                   std::uint64_t chunk_bytes, int transfers,
                                   int cap);

/// drain_cost_us with T_cma taken from the drift monitor's observed means
/// where a full window of samples exists, falling back to the model
/// prediction for concurrency levels the run has not yet exercised.
[[nodiscard]] double observed_drain_cost_us(const obs::DriftMonitor& drift,
                                            const ArchSpec& s,
                                            std::uint64_t chunk_bytes,
                                            int transfers, int cap);

/// drain_cost_us under a shared node memory domain: each of the
/// `transfers` chunk moves pays gamma at min(cap, transfers) — the
/// per-source page-lock contention — while `node_streams` transfers
/// node-wide share the streaming bandwidth (model/predict
/// cma_transfer_shared). node_streams <= cap degenerates to drain_cost_us.
[[nodiscard]] double shared_drain_cost_us(const ArchSpec& s,
                                          std::uint64_t chunk_bytes,
                                          int transfers, int cap,
                                          int node_streams);

/// Model-optimal *aggregate* per-source inflight caps for N co-scheduled
/// teams sharing the node: searches total concurrency C (each tenant
/// leased a weighted share, floor 1 — the starvation backstop) for the C
/// minimizing the slowest tenant's drain makespan when all Sum(c_t)
/// leased streams hit the memory system together. Returns one per-source
/// cap per tenant, in input order; a tenant with ranks <= 1 gets cap 1.
/// With one tenant this reduces to optimal_admission_cap.
[[nodiscard]] std::vector<int>
aggregate_quotas(const ArchSpec& s, std::uint64_t chunk_bytes,
                 const std::vector<TenantDemand>& tenants);

/// shared_drain_cost_us with the per-source T_cma term replaced by the
/// drift monitor's observed mean where a full window exists (model
/// fallback otherwise). The cross-tenant surcharge keeps the model's
/// shared/self ratio — the monitor only ever observes this team's own
/// concurrency, so the node-bandwidth factor cannot be measured directly.
[[nodiscard]] double observed_shared_drain_cost_us(
    const obs::DriftMonitor& drift, const ArchSpec& s,
    std::uint64_t chunk_bytes, int transfers, int cap, int node_streams);

/// aggregate_quotas recomputed from observed latencies (ROADMAP item 4:
/// the attribution ledger's per-concurrency means reach the node quotas
/// through the drift monitor once it declares the model stale). Returns an
/// empty vector when no candidate concurrency has a full-window observed
/// cell — the caller keeps its model-derived leases then.
[[nodiscard]] std::vector<int>
aggregate_quotas_observed(const obs::DriftMonitor& drift, const ArchSpec& s,
                          std::uint64_t chunk_bytes,
                          const std::vector<TenantDemand>& tenants);

/// optimal_admission_cap recomputed from observed latencies: the argmin
/// over {1} and the tuner's throttle candidates of the observed drain
/// makespan. Returns 0 when the monitor has no full-window cell for any
/// candidate — the caller keeps the model-derived cap then. Consulted by
/// the progress engine when the drift monitor has declared the model
/// stale.
[[nodiscard]] int optimal_admission_cap_observed(
    const obs::DriftMonitor& drift, const ArchSpec& s,
    std::uint64_t chunk_bytes, int p);

} // namespace kacc::nbc
