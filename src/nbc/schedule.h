// Schedule IR: every CMA collective lowers to an explicit per-rank list of
// steps (CMA reads/writes, local copies, signals, control exchanges). The
// blocking collectives compile a schedule and drain it synchronously; the
// nonblocking API (src/nbc/nbc.h) hands compiled schedules to the progress
// engine, which interleaves many of them under the admission governor.
//
// A Step never owns memory. CMA steps reference peer buffers indirectly
// through `slot`, an index into Schedule::addrs — in blocking mode those
// slots are filled by earlier kCtrl* steps at drain time, in nonblocking
// mode by the eager control exchange at compile time. Pointers into
// Schedule-owned staging (addrs/self_addr/token/tokens/scratch) stay valid
// across moves because Schedule is handled by unique_ptr only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/buffer.h"

namespace kacc {
class Comm;
} // namespace kacc

namespace kacc::nbc {

enum class StepKind : std::uint8_t {
  kCmaRead,       ///< cma_read(peer, addrs[slot] + remote_off, dst, bytes)
  kCmaWrite,      ///< cma_write(peer, addrs[slot] + remote_off, src, bytes)
  kLocalCopy,     ///< local_copy(dst, src, bytes)
  kSignal,        ///< tag < 0: signal(peer); tag >= 0: nbc_signal(peer, tag)
  kWaitSignal,    ///< tag < 0: wait_signal(peer); tag >= 0: counting lane
  kCtrlBcast,     ///< ctrl_bcast(dst, bytes, peer)         [blocking only]
  kCtrlGather,    ///< ctrl_gather(src, dst, bytes, peer)   [blocking only]
  kCtrlAllgather, ///< ctrl_allgather(src, dst, bytes)      [blocking only]
  kBarrier,       ///< barrier()                            [blocking only]
  kShmSend,       ///< shm_send(peer, src, bytes)           [blocking only]
  kShmRecv,       ///< shm_recv(peer, dst, bytes)           [blocking only]
  kShmBcast,      ///< shm_bcast(dst, bytes, peer)          [blocking only]
  kCombine,       ///< combine(aux, dst, src, bytes/8) + compute_charge
  kConcHint,      ///< recorder().conc_hint = peer (per-level hint)
  kNested,        ///< thunks[slot](comm): a blocking collective
                  ///< [blocking only]
};

/// True for steps that contend on a peer's page-table lock (the governor
/// throttles these; everything else is control plane or local work).
[[nodiscard]] constexpr bool is_data_step(StepKind k) {
  return k == StepKind::kCmaRead || k == StepKind::kCmaWrite;
}

struct Step {
  StepKind kind = StepKind::kBarrier;
  int peer = -1; ///< remote rank (or root for ctrl/shm_bcast steps)
  int slot = -1; ///< index into Schedule::addrs for CMA base addresses
  std::uint64_t remote_off = 0;
  void* dst = nullptr;
  const void* src = nullptr;
  std::size_t bytes = 0;
  int tag = -1; ///< >= 0 selects a counting nbc signal lane
  /// >= 0 routes execution through Schedule::nested[nest]: the step's comm
  /// calls go to the nested team view and its slot resolves against the
  /// nested schedule's addrs. The two-level compositions splice sub-team
  /// phases into one parent schedule this way.
  int nest = -1;
  int aux = 0; ///< kCombine: the ReduceOp
};

struct Schedule {
  int rank = 0;
  int size = 1;
  std::vector<Step> steps;
  /// Expected concurrent CMA peers at any source this schedule touches —
  /// the `c` the compiler designed for (p-1 for parallel fan-in/out, the
  /// throttle k for throttled algorithms, 1 for sequential/pairwise).
  /// drain() publishes it as the Recorder's conc hint so (op, c)-keyed
  /// latency histograms and the drift monitor attribute samples to the
  /// right contention cell.
  int conc_hint = 1;

  // ---- staging owned by the schedule; steps point into these ----
  std::vector<std::uint64_t> addrs; ///< exchanged CMA base addresses
  /// Separate send-side staging for address gathers: ctrl payloads must
  /// not alias `addrs` (ASan flags self-overlapping memcpy in the sim).
  std::uint64_t self_addr = 0;
  char token = 0;           ///< completion-token send staging
  std::vector<char> tokens; ///< completion-token recv staging (root)
  std::vector<AlignedBuffer> scratch; ///< Bruck rotation buffers etc.

  /// A sub-team phase of a composed (two-level) schedule: the view the
  /// spliced steps execute against (nullptr = the schedule's own comm) and
  /// the phase's compiled schedule, kept alive for its addrs/scratch.
  struct NestedTeam {
    std::shared_ptr<Comm> team;
    std::unique_ptr<Schedule> sched;
  };
  std::vector<NestedTeam> nested;

  /// Blocking collectives embedded as steps (kNested), e.g. the tuned
  /// gather inside reduce-gather-combine. Blocking mode only.
  std::vector<std::function<void(Comm&)>> thunks;

  std::size_t pc = 0; ///< next step to execute
  [[nodiscard]] bool done() const { return pc >= steps.size(); }
};

/// The communicator a step must execute against: the nested team view for
/// spliced sub-team steps, otherwise `comm` itself.
[[nodiscard]] Comm& step_comm(Comm& comm, Schedule& s, const Step& st);

/// Executes one step against `comm`. Tagged kWaitSignal steps are the
/// progress engine's job (nbc_try_wait) and are rejected here.
void execute_step(Comm& comm, Schedule& s, const Step& st);

/// Runs a blocking-mode schedule to completion in program order. The
/// blocking collective entry points compile + drain; this is the single
/// execution path shared with the nonblocking engine.
void drain(Comm& comm, Schedule& s);

} // namespace kacc::nbc
