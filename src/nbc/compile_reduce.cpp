// Lowers the reduction collectives (§ the conclusion's "extend these
// designs to other collectives") to Schedule IR. Blocking mode replays the
// historical src/coll/reduce.cpp bodies step for step — including the
// nested tuned gather/reduce/bcast entry-point calls of the composite
// algorithms, preserved as kNested thunks so their tuner resolution,
// counters and spans are unchanged. Nonblocking mode splices the composite
// phases as sub-schedules on the request's counting lane and replaces the
// nested entry points with the equivalent compiled phases plus an explicit
// dissemination gate.
#include <cstdint>
#include <vector>

#include "coll/bcast.h"
#include "coll/gather.h"
#include "coll/reduce.h"
#include "coll/tuner.h"
#include "common/error.h"
#include "common/mathutil.h"
#include "nbc/compile.h"
#include "nbc/lower.h"
#include "runtime/comm.h"

namespace kacc::nbc {

using coll::AllreduceAlgo;
using coll::BcastAlgo;
using coll::CollOptions;
using coll::GatherAlgo;
using coll::ReduceAlgo;
using coll::ReduceOp;
using namespace detail;

namespace {

constexpr std::size_t kElem = sizeof(double);

/// Balanced chunk boundaries for the reduce-scatter phases.
struct Chunking {
  std::size_t base;
  std::size_t rem;

  explicit Chunking(std::size_t count, int p)
      : base(count / static_cast<std::size_t>(p)),
        rem(count % static_cast<std::size_t>(p)) {}

  [[nodiscard]] std::size_t count_of(int q) const {
    return base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
  }
  [[nodiscard]] std::size_t offset_of(int q) const {
    const auto uq = static_cast<std::size_t>(q);
    return uq * base + std::min(uq, rem);
  }
};

/// Owner of chunk q after the ring reduce-scatter.
int chunk_holder(int chunk, int p) { return pmod(chunk - 1, p); }

/// Allocates a schedule-owned accumulator/staging buffer and returns its
/// (heap-stable) element pointer.
double* scratch_doubles(Schedule& s, std::size_t bytes) {
  s.scratch.emplace_back(bytes);
  return reinterpret_cast<double*>(s.scratch.back().data());
}

/// Emits the acc initialization + accumulator address allgather shared by
/// the read-based algorithms (replays exchange_addrs after the local
/// copy, as the historical bodies did).
void init_acc_and_addrs(Lower& lo, Schedule& s, double* acc,
                        const double* send, std::size_t bytes) {
  lo.local_copy(acc, send, bytes);
  s.self_addr = lo.comm.expose(acc);
  lo.addr_allgather();
  if (!lo.blocking()) {
    // Blocking replay synchronizes here through the ctrl-plane allgather
    // itself; nonblocking compiles run that exchange eagerly, so a peer
    // could read acc before this rank's init copy executed. Gate it.
    lo.barrier();
  }
}

/// Ring reduce-scatter: after p-1 chained steps, rank r holds the fully
/// reduced chunk (r+1) mod p. Pairwise-disjoint reads keep it contention
/// free, like the Alltoall pairwise exchange.
void lower_ring_reduce_scatter(Lower& lo, double* acc, double* tmp,
                               ReduceOp op, const Chunking& ch) {
  const int p = lo.p;
  const int rank = lo.rank;
  const int up = pmod(rank - 1, p);
  const int down = pmod(rank + 1, p);
  for (int step = 1; step < p; ++step) {
    const int c = pmod(rank - step, p);
    if (step >= 2) {
      lo.wait_signal(up); // up finished accumulating chunk c last step
    }
    lo.cma_read(up, up, ch.offset_of(c) * kElem, tmp,
                ch.count_of(c) * kElem);
    lo.combine(static_cast<int>(op), acc + ch.offset_of(c), tmp,
               ch.count_of(c) * kElem);
    if (step <= p - 2) {
      lo.signal(down);
    }
  }
}

/// Tuned gather of full vectors followed by a root-side combine — the
/// write-based, contention-aware design (the gather phase reuses the
/// throttled writes of §IV-B).
void lower_gather_combine(Lower& lo, Schedule& s, const double* send,
                          double* recv, std::size_t count, ReduceOp op,
                          int root, const CompileParams& params) {
  Comm& comm = lo.comm;
  const int p = lo.p;
  const std::size_t bytes = count * kElem;
  s.scratch.emplace_back(lo.rank == root
                             ? bytes * static_cast<std::size_t>(p)
                             : 0);
  std::byte* staging =
      s.scratch.back().empty() ? nullptr : s.scratch.back().data();
  if (lo.blocking()) {
    lo.nested([send, staging, bytes, root](Comm& c) {
      coll::gather(c, send, staging, bytes, root, GatherAlgo::kAuto);
    });
  } else {
    CollOptions geff;
    const coll::Tuner::Choice c = coll::Tuner().gather(comm.arch(), p, bytes);
    geff.throttle = c.throttle;
    splice(s, nullptr,
           compile_gather(comm, send, staging, bytes, root, c.gather, geff,
                          params));
  }
  if (lo.rank == root) {
    const auto* blocks = reinterpret_cast<const double*>(staging);
    lo.local_copy(recv, blocks, bytes);
    for (int q = 1; q < p; ++q) {
      lo.combine(static_cast<int>(op), recv,
                 blocks + static_cast<std::size_t>(q) * count, bytes);
    }
  }
}

/// Binomial read tree: parents pull each child's accumulator (distinct
/// sources per round — no page-lock contention) and combine.
void lower_binomial_read(Lower& lo, Schedule& s, const double* send,
                         double* recv, std::size_t count, ReduceOp op,
                         int root) {
  const int p = lo.p;
  const int vrank = pmod(lo.rank - root, p);
  auto actual = [&](int v) { return pmod(v + root, p); };
  const std::size_t bytes = count * kElem;

  double* acc = scratch_doubles(s, bytes);
  double* tmp = scratch_doubles(s, bytes);
  init_acc_and_addrs(lo, s, acc, send, bytes);

  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & mask) != 0) {
      // Contribute to the parent, then hold the buffer until it is read.
      const int parent = actual(vrank - mask);
      lo.signal(parent);      // acc ready
      lo.wait_signal(parent); // parent finished reading
      break;
    }
    if (vrank + mask < p) {
      const int child = actual(vrank + mask);
      lo.wait_signal(child);
      lo.cma_read(child, child, 0, tmp, bytes);
      lo.combine(static_cast<int>(op), acc, tmp, bytes);
      lo.signal(child); // child may release its buffer
    }
  }
  if (lo.rank == root) {
    lo.local_copy(recv, acc, bytes);
  }
  // acc buffers live in the schedule, but peers may still be reading them
  // until everyone is through — same fence the historical body had.
  lo.barrier();
}

/// Reduce-scatter + sequential chunk gather at the root.
void lower_rsg(Lower& lo, Schedule& s, const double* send, double* recv,
               std::size_t count, ReduceOp op, int root) {
  const int p = lo.p;
  const std::size_t bytes = count * kElem;
  const Chunking ch(count, p);

  double* acc = scratch_doubles(s, bytes);
  double* tmp = scratch_doubles(s, (ch.base + 1) * kElem);
  init_acc_and_addrs(lo, s, acc, send, bytes);

  lower_ring_reduce_scatter(lo, acc, tmp, op, ch);
  lo.barrier(); // every chunk fully reduced

  if (lo.rank == root) {
    for (int c = 0; c < p; ++c) {
      const int holder = chunk_holder(c, p);
      if (ch.count_of(c) == 0) {
        continue;
      }
      if (holder == root) {
        lo.local_copy(recv + ch.offset_of(c), acc + ch.offset_of(c),
                      ch.count_of(c) * kElem);
      } else {
        lo.cma_read(holder, holder, ch.offset_of(c) * kElem,
                    recv + ch.offset_of(c), ch.count_of(c) * kElem);
      }
    }
  }
  lo.barrier(); // holders keep acc alive until the root has read
}

/// Recursive-doubling allreduce with fold-in/out for non-powers-of-two.
void lower_allreduce_rd(Lower& lo, Schedule& s, const double* send,
                        double* recv, std::size_t count, ReduceOp op) {
  const int p = lo.p;
  const int rank = lo.rank;
  const std::size_t bytes = count * kElem;

  double* acc = scratch_doubles(s, bytes);
  double* tmp = scratch_doubles(s, bytes);
  init_acc_and_addrs(lo, s, acc, send, bytes);

  int r = 1;
  while (r * 2 <= p) {
    r *= 2;
  }

  // Fold-in: ranks >= r contribute to (rank - r).
  if (rank >= r) {
    lo.signal(rank - r);
    lo.wait_signal(rank - r);
  } else if (rank + r < p) {
    const int src = rank + r;
    lo.wait_signal(src);
    lo.cma_read(src, src, 0, tmp, bytes);
    lo.combine(static_cast<int>(op), acc, tmp, bytes);
    lo.signal(src);
  }

  if (rank < r) {
    for (int mask = 1; mask < r; mask <<= 1) {
      const int partner = rank ^ mask;
      // Both sides read the peer's current accumulator, then combine only
      // after both reads completed (read-ready / read-done handshake).
      lo.signal(partner);
      lo.wait_signal(partner);
      lo.cma_read(partner, partner, 0, tmp, bytes);
      lo.signal(partner);
      lo.wait_signal(partner);
      lo.combine(static_cast<int>(op), acc, tmp, bytes);
    }
  }

  // Fold-out: ranks >= r pull the final vector.
  if (rank < r && rank + r < p) {
    lo.signal(rank + r);
  } else if (rank >= r) {
    const int src = rank - r;
    lo.wait_signal(src);
    lo.cma_read(src, src, 0, acc, bytes);
  }
  lo.local_copy(recv, acc, bytes);
  lo.barrier();
}

/// Rabenseifner: ring reduce-scatter, then every rank pulls each reduced
/// chunk straight from its holder (ring-source allgather — contention
/// free).
void lower_allreduce_rabenseifner(Lower& lo, Schedule& s, const double* send,
                                  double* recv, std::size_t count,
                                  ReduceOp op) {
  const int p = lo.p;
  const int rank = lo.rank;
  const std::size_t bytes = count * kElem;
  const Chunking ch(count, p);

  double* acc = scratch_doubles(s, bytes);
  double* tmp = scratch_doubles(s, (ch.base + 1) * kElem);
  init_acc_and_addrs(lo, s, acc, send, bytes);

  lower_ring_reduce_scatter(lo, acc, tmp, op, ch);
  lo.barrier();

  // Allgather phase: rotate over distinct holders.
  const int own_chunk = pmod(rank + 1, p);
  if (ch.count_of(own_chunk) > 0) {
    lo.local_copy(recv + ch.offset_of(own_chunk),
                  acc + ch.offset_of(own_chunk),
                  ch.count_of(own_chunk) * kElem);
  }
  for (int step = 1; step < p; ++step) {
    const int holder = pmod(rank - step, p);
    const int c = pmod(holder + 1, p);
    if (ch.count_of(c) == 0) {
      continue;
    }
    lo.cma_read(holder, holder, ch.offset_of(c) * kElem,
                recv + ch.offset_of(c), ch.count_of(c) * kElem);
  }
  lo.barrier();
}

} // namespace

std::unique_ptr<Schedule> compile_reduce(Comm& comm, const double* send,
                                         double* recv, std::size_t count,
                                         ReduceOp op, int root,
                                         ReduceAlgo algo,
                                         const CollOptions& eff,
                                         const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  (void)eff;
  if (lo.p == 1) {
    lo.local_copy(recv, send, count * kElem);
    return sched;
  }
  switch (algo) {
    case ReduceAlgo::kGatherCombine:
      lower_gather_combine(lo, *sched, send, recv, count, op, root, params);
      break;
    case ReduceAlgo::kBinomialRead:
      lower_binomial_read(lo, *sched, send, recv, count, op, root);
      break;
    case ReduceAlgo::kReduceScatterGather:
      lower_rsg(lo, *sched, send, recv, count, op, root);
      break;
    case ReduceAlgo::kHier:
      return compile_hier_reduce(comm, send, recv, count, op, root, eff,
                                      params);
    case ReduceAlgo::kAuto:
      throw InternalError("compile_reduce: unresolved kAuto");
  }
  return sched;
}

std::unique_ptr<Schedule> compile_allreduce(Comm& comm, const double* send,
                                            double* recv, std::size_t count,
                                            ReduceOp op, AllreduceAlgo algo,
                                            const CollOptions& eff,
                                            const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const std::size_t bytes = count * kElem;
  if (lo.p == 1) {
    lo.local_copy(recv, send, bytes);
    return sched;
  }
  switch (algo) {
    case AllreduceAlgo::kReduceBcast:
      if (lo.blocking()) {
        // Replays the historical composite exactly: the nested entry
        // points resolve their own algorithms and emit their own spans.
        lo.nested([send, recv, count, op](Comm& c) {
          coll::reduce(c, send, recv, count, op, 0, ReduceAlgo::kAuto);
        });
        lo.nested([recv, bytes](Comm& c) {
          coll::bcast(c, recv, bytes, 0, BcastAlgo::kAuto);
        });
      } else {
        // Nonblocking: compile both tuned phases onto this request's lane
        // with a dissemination gate between them — the bcast's control
        // exchange ran eagerly at compile time, so without the gate a
        // non-root could read root's recv before the combines landed.
        const ReduceAlgo ralgo =
            coll::Tuner().reduce(comm.arch(), lo.p, bytes).reduce;
        splice(*sched, nullptr,
               compile_reduce(comm, send, recv, count, op, 0, ralgo, eff,
                              params));
        lo.barrier();
        CollOptions beff;
        coll::Tuner::Choice c = coll::Tuner().bcast(comm.arch(), lo.p, bytes);
        beff.throttle = c.throttle;
        BcastAlgo balgo = c.bcast;
        if (balgo == BcastAlgo::kShmemSlot || balgo == BcastAlgo::kShmemTree) {
          balgo = BcastAlgo::kKnomialRead;
        }
        splice(*sched, nullptr,
               compile_bcast(comm, recv, bytes, 0, balgo, beff, params));
      }
      break;
    case AllreduceAlgo::kRecursiveDoubling:
      lower_allreduce_rd(lo, *sched, send, recv, count, op);
      break;
    case AllreduceAlgo::kRabenseifner:
      lower_allreduce_rabenseifner(lo, *sched, send, recv, count, op);
      break;
    case AllreduceAlgo::kHier:
      return compile_hier_allreduce(comm, send, recv, count, op, eff,
                                         params);
    case AllreduceAlgo::kAuto:
      throw InternalError("compile_allreduce: unresolved kAuto");
  }
  return sched;
}

} // namespace kacc::nbc
