// The shared lowering emitter behind the schedule compiler. One `Lower`
// per compile call: it appends steps to a Schedule, choosing between the
// blocking replay and the nonblocking (eager-exchange, tagged-signal,
// chunked) lowering of each primitive. Split out of compile.cpp so the
// reduce and two-level compile units emit through the identical primitives
// (and therefore inherit the lane-sharing correctness argument documented
// in compile.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "coll/algo.h"
#include "common/error.h"
#include "common/mathutil.h"
#include "nbc/compile.h"
#include "nbc/schedule.h"
#include "runtime/comm.h"

namespace kacc::nbc::detail {

inline std::byte* bptr(void* p, std::size_t off) {
  return static_cast<std::byte*>(p) + off;
}
inline const std::byte* bptr(const void* p, std::size_t off) {
  return static_cast<const std::byte*>(p) + off;
}

// ---- wave/tree bookkeeping shared by scatter/gather/bcast lowerings ----

/// Position of a non-root rank in the 0..p-2 wave ordering.
inline int nonroot_pos(int rank, int root) {
  return rank < root ? rank : rank - 1;
}

/// Inverse of nonroot_pos.
inline int nonroot_rank(int pos, int root) {
  return pos < root ? pos : pos + 1;
}

/// Ranks in the last wave of a k-throttled schedule over p-1 movers.
inline int last_wave_size(int p, int k) {
  const int movers = p - 1;
  const int rem = movers % k;
  return rem == 0 ? std::min(k, movers) : rem;
}

/// k-nomial tree bookkeeping over virtual ranks (vrank 0 is the root).
/// A vrank's parent clears its lowest nonzero digit in base (k+1); its
/// children set one digit below that position.
struct KnomialNode {
  int parent = -1;           ///< vrank of parent (-1 for the root)
  std::vector<int> children; ///< vranks, coarsest level first
};

KnomialNode knomial_node(int vrank, int p, int k);

/// Peer of `rank` at pairwise step i: XOR schedule when p is a power of
/// two (symmetric pairs), modular otherwise.
inline int pairwise_read_peer(int rank, int step, int p) {
  if (is_pow2(static_cast<std::uint64_t>(p))) {
    return rank ^ step;
  }
  return pmod(rank - step, p);
}

// ---- the emitter ----

struct Lower {
  Comm& comm;
  Schedule& s;
  Mode mode;
  int tag;
  std::size_t chunk;
  int rank;
  int p;

  Lower(Comm& c, Schedule& sched, const CompileParams& params)
      : comm(c), s(sched), mode(params.mode), tag(params.tag),
        chunk(params.chunk_bytes), rank(c.rank()), p(c.size()) {
    if (mode == Mode::kNonblocking) {
      KACC_CHECK_MSG(tag >= 0 && tag < Comm::kNbcTags,
                     "nbc signal lane out of range");
    }
  }

  [[nodiscard]] bool blocking() const { return mode == Mode::kBlocking; }

  Step& push(StepKind kind) {
    s.steps.emplace_back();
    Step& st = s.steps.back();
    st.kind = kind;
    return st;
  }

  void cma(StepKind kind, int peer, int slot, std::uint64_t off, void* dst,
           const void* src, std::size_t n) {
    const std::size_t grain = (!blocking() && chunk > 0) ? chunk : n;
    std::size_t done = 0;
    do {
      const std::size_t piece = std::min(grain, n - done);
      Step& st = push(kind);
      st.peer = peer;
      st.slot = slot;
      st.remote_off = off + done;
      st.dst = dst == nullptr ? nullptr : bptr(dst, done);
      st.src = src == nullptr ? nullptr : bptr(src, done);
      st.bytes = piece;
      done += piece;
    } while (done < n);
  }
  void cma_read(int peer, int slot, std::uint64_t off, void* dst,
                std::size_t n) {
    cma(StepKind::kCmaRead, peer, slot, off, dst, nullptr, n);
  }
  void cma_write(int peer, int slot, std::uint64_t off, const void* src,
                 std::size_t n) {
    cma(StepKind::kCmaWrite, peer, slot, off, nullptr, src, n);
  }
  void local_copy(void* dst, const void* src, std::size_t n) {
    Step& st = push(StepKind::kLocalCopy);
    st.dst = dst;
    st.src = src;
    st.bytes = n;
  }
  /// combine(op, acc, operand, n/8) followed by the model's compute charge
  /// — the step form of coll's charge_and_combine.
  void combine(int op, void* acc, const void* operand, std::size_t n) {
    Step& st = push(StepKind::kCombine);
    st.aux = op;
    st.dst = acc;
    st.src = operand;
    st.bytes = n;
  }
  /// Embeds a blocking collective entry point as one step, preserving its
  /// own tuner resolution, counters and spans at drain time.
  void nested(std::function<void(Comm&)> fn) {
    KACC_CHECK_MSG(blocking(), "nested collective steps are blocking-only");
    s.thunks.push_back(std::move(fn));
    Step& st = push(StepKind::kNested);
    st.slot = static_cast<int>(s.thunks.size()) - 1;
  }
  /// Publishes a per-level concurrency hint mid-schedule (kConcHint).
  void conc_hint(int c) {
    Step& st = push(StepKind::kConcHint);
    st.peer = c;
  }
  void signal(int peer) {
    Step& st = push(StepKind::kSignal);
    st.peer = peer;
    st.tag = blocking() ? -1 : tag;
  }
  void wait_signal(int peer) {
    Step& st = push(StepKind::kWaitSignal);
    st.peer = peer;
    st.tag = blocking() ? -1 : tag;
  }

  // --- control exchanges: steps when blocking, eager otherwise ---

  /// Broadcasts s.addrs[root] (prefilled at the root) to every rank.
  void addr_bcast(int root) {
    if (blocking()) {
      Step& st = push(StepKind::kCtrlBcast);
      st.peer = root;
      st.dst = &s.addrs[static_cast<std::size_t>(root)];
      st.bytes = sizeof(std::uint64_t);
    } else {
      comm.ctrl_bcast(&s.addrs[static_cast<std::size_t>(root)],
                      sizeof(std::uint64_t), root);
    }
  }

  /// Gathers every rank's s.self_addr into the root's s.addrs.
  void addr_gather(int root) {
    void* recv = rank == root ? static_cast<void*>(s.addrs.data()) : nullptr;
    if (blocking()) {
      Step& st = push(StepKind::kCtrlGather);
      st.peer = root;
      st.src = &s.self_addr;
      st.dst = recv;
      st.bytes = sizeof(std::uint64_t);
    } else {
      comm.ctrl_gather(&s.self_addr, recv, sizeof(std::uint64_t), root);
    }
  }

  /// Allgathers every rank's s.self_addr into s.addrs.
  void addr_allgather() {
    if (blocking()) {
      Step& st = push(StepKind::kCtrlAllgather);
      st.src = &s.self_addr;
      st.dst = s.addrs.data();
      st.bytes = sizeof(std::uint64_t);
    } else {
      comm.ctrl_allgather(&s.self_addr, s.addrs.data(),
                          sizeof(std::uint64_t));
    }
  }

  /// Completion fan-in: non-roots notify the root (a 1-byte token gather
  /// in blocking mode, p-1 tagged signals otherwise).
  void completion_fan_in(int root) {
    if (blocking()) {
      Step& st = push(StepKind::kCtrlGather);
      st.peer = root;
      st.src = &s.token;
      st.dst = rank == root ? static_cast<void*>(s.tokens.data()) : nullptr;
      st.bytes = 1;
    } else if (rank == root) {
      for (int q = 0; q < p; ++q) {
        if (q != root) {
          wait_signal(q);
        }
      }
    } else {
      signal(root);
    }
  }

  /// Completion fan-out: the root releases every non-root.
  void completion_fan_out(int root) {
    if (blocking()) {
      Step& st = push(StepKind::kCtrlBcast);
      st.peer = root;
      st.dst = &s.token;
      st.bytes = 1;
    } else if (rank == root) {
      for (int q = 0; q < p; ++q) {
        if (q != root) {
          signal(q);
        }
      }
    } else {
      wait_signal(root);
    }
  }

  /// Full barrier: one step when blocking; dissemination rounds over the
  /// request's counting lane otherwise (ceil(log2 p) signal/wait pairs).
  void barrier() {
    if (blocking()) {
      push(StepKind::kBarrier);
      return;
    }
    for (int d = 1; d < p; d <<= 1) {
      signal(pmod(rank + d, p));
      wait_signal(pmod(rank - d, p));
    }
  }

  // --- two-copy shm data plane: blocking only ---

  void shm_send(int dst, const void* buf, std::size_t n) {
    KACC_CHECK_MSG(blocking(), "shm steps are blocking-only");
    Step& st = push(StepKind::kShmSend);
    st.peer = dst;
    st.src = buf;
    st.bytes = n;
  }
  void shm_recv(int src, void* buf, std::size_t n) {
    KACC_CHECK_MSG(blocking(), "shm steps are blocking-only");
    Step& st = push(StepKind::kShmRecv);
    st.peer = src;
    st.dst = buf;
    st.bytes = n;
  }
  void shm_bcast(void* buf, std::size_t n, int root) {
    KACC_CHECK_MSG(blocking(), "shm steps are blocking-only");
    Step& st = push(StepKind::kShmBcast);
    st.peer = root;
    st.dst = buf;
    st.bytes = n;
  }
};

std::unique_ptr<Schedule> make_schedule(Comm& comm);

inline int throttle_k(const coll::CollOptions& eff, int p) {
  return std::min(eff.throttle > 0 ? eff.throttle : 4, p - 1);
}

/// Appends every step of `sub` to `parent`, rerouted through a nested-team
/// entry so peers/slots resolve in the sub-schedule's frame, and records
/// the sub-schedule (with its addrs/scratch, kept alive) under the view it
/// executes against. `team` may be nullptr for a phase compiled on the
/// parent communicator itself.
void splice(Schedule& parent, std::shared_ptr<Comm> team,
            std::unique_ptr<Schedule> sub);

} // namespace kacc::nbc::detail
