// kacc::nbc — nonblocking and persistent collectives.
//
//   Request r = nbc::ibcast(comm, buf, bytes, root);   // init + start
//   ... overlap compute, or start more collectives ...
//   nbc::wait(r);                                      // progress + block
//
// Persistent variants (*_init) compile the schedule once and return an
// inactive Request; nbc::start() (re)launches it, any number of times.
// Buffers, counts and roots are committed at init; per the MPI persistent
// contract the caller may change buffer *contents* between rounds but not
// the buffers themselves.
//
// Progress happens inside test/wait/wait_all/wait_any: a per-rank engine
// advances every outstanding schedule, one data step per request per pass
// (fairness), throttled by the contention-aware admission governor
// (src/nbc/governor.h). Up to Comm::kNbcTags requests can be outstanding
// per communicator; init calls are collective and must be issued in the
// same order on every rank (SPMD), like every other collective here.
//
// bytes == 0 compiles to an empty schedule that completes at the first
// test/wait — unlike the blocking entry points, no barrier is implied.
// Shared-memory algorithms (kShmemTree/kShmemSlot/kPairwiseShmem) have no
// nonblocking lowering: kAuto choices fall back to a CMA algorithm,
// explicit requests raise InvalidArgument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "coll/algo.h"
#include "coll/reduce.h"

namespace kacc {
class Comm;
} // namespace kacc

namespace kacc::nbc {

namespace detail {
struct RequestState;
struct Access;
} // namespace detail

/// Per-request knobs. Zero/default values mean "model decides".
struct Options {
  /// Pipelining grain: CMA transfers larger than this are split so the
  /// progress engine can interleave requests and the governor can throttle
  /// mid-message. 0 = never split.
  std::size_t chunk_bytes = 256 * 1024;
  /// When false, the admission governor only accounts (for observability)
  /// but never defers this request's data steps.
  bool governed = true;
  /// > 0 overrides the model-derived per-source admission cap.
  int admission_cap = 0;
};

/// Handle to one nonblocking/persistent collective. Cheap to copy; all
/// copies refer to the same underlying operation.
class Request {
public:
  Request() = default;
  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  /// True once the operation has completed (persistent requests: the
  /// latest round).
  [[nodiscard]] bool completed() const;
  [[nodiscard]] std::uint64_t id() const;

private:
  friend struct detail::Access;
  std::shared_ptr<detail::RequestState> st_;
  Comm* comm_ = nullptr;
};

// ----- persistent inits (compile once, start many times) -----

Request scatter_init(Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bytes, int root,
                     coll::ScatterAlgo algo = coll::ScatterAlgo::kAuto,
                     const coll::CollOptions& opts = {},
                     const Options& nopts = {});

Request gather_init(Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bytes, int root,
                    coll::GatherAlgo algo = coll::GatherAlgo::kAuto,
                    const coll::CollOptions& opts = {},
                    const Options& nopts = {});

Request bcast_init(Comm& comm, void* buf, std::size_t bytes, int root,
                   coll::BcastAlgo algo = coll::BcastAlgo::kAuto,
                   const coll::CollOptions& opts = {},
                   const Options& nopts = {});

Request allgather_init(Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t bytes,
                       coll::AllgatherAlgo algo = coll::AllgatherAlgo::kAuto,
                       const coll::CollOptions& opts = {},
                       const Options& nopts = {});

Request alltoall_init(Comm& comm, const void* sendbuf, void* recvbuf,
                      std::size_t bytes,
                      coll::AlltoallAlgo algo = coll::AlltoallAlgo::kAuto,
                      const coll::CollOptions& opts = {},
                      const Options& nopts = {});

Request reduce_init(Comm& comm, const double* send, double* recv,
                    std::size_t count, coll::ReduceOp op, int root,
                    coll::ReduceAlgo algo = coll::ReduceAlgo::kAuto,
                    const coll::CollOptions& opts = {},
                    const Options& nopts = {});

Request allreduce_init(Comm& comm, const double* send, double* recv,
                       std::size_t count, coll::ReduceOp op,
                       coll::AllreduceAlgo algo = coll::AllreduceAlgo::kAuto,
                       const coll::CollOptions& opts = {},
                       const Options& nopts = {});

// ----- immediate nonblocking starts (init + start) -----

Request iscatter(Comm& comm, const void* sendbuf, void* recvbuf,
                 std::size_t bytes, int root,
                 coll::ScatterAlgo algo = coll::ScatterAlgo::kAuto,
                 const coll::CollOptions& opts = {},
                 const Options& nopts = {});

Request igather(Comm& comm, const void* sendbuf, void* recvbuf,
                std::size_t bytes, int root,
                coll::GatherAlgo algo = coll::GatherAlgo::kAuto,
                const coll::CollOptions& opts = {},
                const Options& nopts = {});

Request ibcast(Comm& comm, void* buf, std::size_t bytes, int root,
               coll::BcastAlgo algo = coll::BcastAlgo::kAuto,
               const coll::CollOptions& opts = {},
               const Options& nopts = {});

Request iallgather(Comm& comm, const void* sendbuf, void* recvbuf,
                   std::size_t bytes,
                   coll::AllgatherAlgo algo = coll::AllgatherAlgo::kAuto,
                   const coll::CollOptions& opts = {},
                   const Options& nopts = {});

Request ialltoall(Comm& comm, const void* sendbuf, void* recvbuf,
                  std::size_t bytes,
                  coll::AlltoallAlgo algo = coll::AlltoallAlgo::kAuto,
                  const coll::CollOptions& opts = {},
                  const Options& nopts = {});

Request ireduce(Comm& comm, const double* send, double* recv,
                std::size_t count, coll::ReduceOp op, int root,
                coll::ReduceAlgo algo = coll::ReduceAlgo::kAuto,
                const coll::CollOptions& opts = {},
                const Options& nopts = {});

Request iallreduce(Comm& comm, const double* send, double* recv,
                   std::size_t count, coll::ReduceOp op,
                   coll::AllreduceAlgo algo = coll::AllreduceAlgo::kAuto,
                   const coll::CollOptions& opts = {},
                   const Options& nopts = {});

// ----- progress & completion -----

/// (Re)starts a persistent request made by *_init. InvalidArgument when
/// the request is invalid, still active, or not persistent.
void start(Request& req);

/// One progress pass; returns true iff the request has completed.
bool test(Request& req);

/// Blocks (while progressing every outstanding request) until complete.
/// Raises PeerDiedError/TimeoutError/DeadlockError like the blocking
/// collectives when the team fails mid-operation.
void wait(Request& req);

/// Waits for all of the given requests. Invalid handles are skipped.
void wait_all(std::span<Request> reqs);

/// Waits until at least one request completes and returns its index,
/// round-robin across completed candidates so repeated calls are fair.
/// The returned request is consumed (MPI_Waitany): it is never reported
/// again, and a non-persistent handle is reset to invalid — persistent
/// handles stay valid and become waitable again after start(). Raises
/// InvalidArgument when no started, unconsumed request is present.
std::size_t wait_any(std::span<Request> reqs);

} // namespace kacc::nbc
