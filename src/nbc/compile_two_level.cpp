// Hierarchy-aware two-level compositions: every collective is rebuilt as a
// leader phase bridging socket domains plus tuned flat phases inside each
// domain, running on SubComm views and spliced into one parent schedule.
// The intra-domain algorithm is chosen by the Tuner on the single-socket
// view of the arch (so the model prices it without phantom cross-socket
// penalties); the leader algorithm is chosen on the full arch with one
// rank per socket. Downward phases (a leader handing data to its domain)
// carry an explicit leader -> member gate because the spliced phase's
// control exchange runs eagerly at nonblocking compile time; the gate is
// emitted in blocking mode too so both modes execute the same dependence
// structure. Block distribution makes every domain a contiguous global
// rank range, so a domain's blocks form one contiguous slab of the root
// buffer and the leader bridge is a single CMA transfer per domain.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "coll/tuner.h"
#include "common/error.h"
#include "model/predict.h"
#include "nbc/compile.h"
#include "nbc/lower.h"
#include "runtime/comm.h"
#include "runtime/sub_comm.h"
#include "topo/hierarchy.h"

namespace kacc::nbc {

using coll::AllgatherAlgo;
using coll::AllreduceAlgo;
using coll::BcastAlgo;
using coll::CollOptions;
using coll::GatherAlgo;
using coll::ReduceAlgo;
using coll::ReduceOp;
using coll::ScatterAlgo;
using coll::Tuner;
using namespace detail;

namespace {

constexpr std::size_t kElem = sizeof(double);

std::byte* scratch_bytes(Schedule& s, std::size_t n) {
  s.scratch.emplace_back(n);
  return s.scratch.back().data();
}

/// This rank's view of the leader decomposition.
struct Teams {
  topo::Hierarchy h;
  int my_dom = 0;
  int dsize = 0;
  int first = 0;      ///< lowest global rank of my domain (contiguous)
  int leader = 0;     ///< global rank of my domain's leader
  int leader_pos = 0; ///< leader's view rank inside the domain
  std::shared_ptr<Comm> dteam; ///< my domain view (every rank)
  std::shared_ptr<Comm> lteam; ///< leader view (leaders only, else null)
};

Teams make_teams(Comm& comm, topo::Hierarchy h) {
  Teams t{std::move(h)};
  const int rank = comm.rank();
  t.my_dom = t.h.domain_of(rank);
  const topo::Domain& dom = t.h.domain(t.my_dom);
  t.dsize = static_cast<int>(dom.members.size());
  t.first = dom.members.front();
  t.leader = dom.leader;
  for (std::size_t i = 0; i < dom.members.size(); ++i) {
    if (dom.members[i] == t.leader) {
      t.leader_pos = static_cast<int>(i);
    }
  }
  t.dteam = std::make_shared<SubComm>(comm, dom.members);
  if (t.leader == rank) {
    t.lteam = std::make_shared<SubComm>(comm, t.h.leaders());
  }
  return t;
}

/// Leader -> member release inside one domain, on the parent frame. Used
/// before every spliced downward phase.
void domain_gate(Lower& lo, const Teams& t) {
  if (t.dsize <= 1) {
    return;
  }
  if (lo.rank == t.leader) {
    for (int m : t.h.domain(t.my_dom).members) {
      if (m != lo.rank) {
        lo.signal(m);
      }
    }
  } else {
    lo.wait_signal(t.leader);
  }
}

// Tuner picks with the recursion/lowering guards the compositions need:
// kTwoLevel can never be chosen for a sub-phase (the intra view has one
// socket and the leader team one rank per socket, so the applicability
// guard rejects both), but remap it defensively, and route shm bcast
// choices to knomial-read so both compile modes lower the same family.

Tuner::Choice pick_scatter(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().scatter(s, p, bytes);
  if (c.scatter == ScatterAlgo::kTwoLevel) {
    c.scatter = ScatterAlgo::kThrottledRead;
    c.throttle = 4;
  }
  return c;
}

Tuner::Choice pick_gather(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().gather(s, p, bytes);
  if (c.gather == GatherAlgo::kTwoLevel) {
    c.gather = GatherAlgo::kThrottledWrite;
    c.throttle = 4;
  }
  return c;
}

Tuner::Choice pick_bcast(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().bcast(s, p, bytes);
  if (c.bcast == BcastAlgo::kShmemSlot || c.bcast == BcastAlgo::kShmemTree ||
      c.bcast == BcastAlgo::kTwoLevel) {
    c.bcast = BcastAlgo::kKnomialRead;
    if (c.throttle <= 0) {
      c.throttle = 4;
    }
  }
  return c;
}

Tuner::Choice pick_allgather(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().allgather(s, p, bytes);
  if (c.allgather == AllgatherAlgo::kTwoLevel) {
    c.allgather = AllgatherAlgo::kRingSourceRead;
    c.ring_stride = 1;
  }
  return c;
}

Tuner::Choice pick_reduce(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().reduce(s, p, bytes);
  if (c.reduce == ReduceAlgo::kTwoLevel) {
    c.reduce = ReduceAlgo::kBinomialRead;
  }
  return c;
}

Tuner::Choice pick_allreduce(const ArchSpec& s, int p, std::size_t bytes) {
  Tuner::Choice c = Tuner().allreduce(s, p, bytes);
  if (c.allreduce == AllreduceAlgo::kTwoLevel) {
    c.allreduce = AllreduceAlgo::kRecursiveDoubling;
  }
  return c;
}

/// Intra-phase options: honor an explicit caller throttle, otherwise take
/// the tuner's.
CollOptions sub_options(const CollOptions& eff, const Tuner::Choice& c) {
  CollOptions o;
  o.throttle = eff.throttle > 0 ? eff.throttle : c.throttle;
  o.ring_stride = c.ring_stride;
  return o;
}

} // namespace

// ---- Scatter ----

std::unique_ptr<Schedule> compile_two_level_scatter(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  h.elect_root_affine(root);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_scatter(comm.arch(), p, bytes);
    return compile_scatter(comm, sendbuf, recvbuf, bytes, root, c.scatter,
                           sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, std::move(h));
  const int nd = t.h.ndomains();
  const int rd = t.h.domain_of(root);
  sched->conc_hint = nd - 1; // concurrent leader slab reads off the root

  if (rank == root) {
    sched->addrs[static_cast<std::size_t>(root)] = comm.expose(sendbuf);
  }
  lo.addr_bcast(root);

  const std::size_t slab_bytes = static_cast<std::size_t>(t.dsize) * bytes;
  const std::uint64_t slab_off = static_cast<std::uint64_t>(t.first) * bytes;

  // What this domain's intra phase fans out from: the root's domain reads
  // sendbuf in place; other leaders pull their slab across the link first.
  const void* slab_src = nullptr;
  if (t.my_dom == rd) {
    if (rank == root) {
      slab_src = bptr(sendbuf, static_cast<std::size_t>(slab_off));
    }
  } else if (rank == t.leader) {
    std::byte* slab =
        t.dsize == 1 ? static_cast<std::byte*>(recvbuf)
                     : scratch_bytes(*sched, slab_bytes);
    lo.cma_read(root, root, slab_off, slab, slab_bytes);
    lo.signal(root); // root may release sendbuf's slab
    slab_src = slab;
  }

  if (t.my_dom != rd) {
    domain_gate(lo, t); // members must not read the slab before it lands
  }

  if (t.dsize > 1) {
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_scatter(view, t.dsize, bytes);
    CollOptions ieff = sub_options(eff, ic);
    ieff.in_place = eff.in_place && t.my_dom == rd;
    auto sub = compile_scatter(*t.dteam, slab_src, recvbuf, bytes,
                               t.leader_pos, ic.scatter, ieff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  } else if (rank == root && !eff.in_place) {
    lo.local_copy(recvbuf,
                  bptr(sendbuf, static_cast<std::size_t>(root) * bytes),
                  bytes);
  }

  if (rank == root) {
    for (int d = 0; d < nd; ++d) {
      if (d != rd) {
        lo.wait_signal(t.h.domain(d).leader);
      }
    }
  }
  return sched;
}

// ---- Gather ----

std::unique_ptr<Schedule> compile_two_level_gather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  h.elect_root_affine(root);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_gather(comm.arch(), p, bytes);
    return compile_gather(comm, sendbuf, recvbuf, bytes, root, c.gather,
                          sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, std::move(h));
  const int nd = t.h.ndomains();
  const int rd = t.h.domain_of(root);

  if (rank == root) {
    sched->addrs[static_cast<std::size_t>(root)] = comm.expose(recvbuf);
  }
  lo.addr_bcast(root);

  const std::size_t slab_bytes = static_cast<std::size_t>(t.dsize) * bytes;
  const std::uint64_t slab_off = static_cast<std::uint64_t>(t.first) * bytes;

  // The leader's assembled domain slab: the root's domain gathers straight
  // into recvbuf; other leaders stage (or forward sendbuf when alone).
  const void* slab_out = nullptr;
  void* slab_recv = nullptr;
  if (t.my_dom == rd) {
    if (rank == root) {
      slab_recv = bptr(recvbuf, static_cast<std::size_t>(slab_off));
    }
  } else if (rank == t.leader) {
    if (t.dsize == 1) {
      slab_out = sendbuf;
    } else {
      slab_recv = scratch_bytes(*sched, slab_bytes);
      slab_out = slab_recv;
    }
  }

  if (t.dsize > 1) {
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_gather(view, t.dsize, bytes);
    CollOptions ieff = sub_options(eff, ic);
    ieff.in_place = eff.in_place && t.my_dom == rd;
    auto sub = compile_gather(*t.dteam, sendbuf, slab_recv, bytes,
                              t.leader_pos, ic.gather, ieff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  } else if (rank == root && !eff.in_place) {
    lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(root) * bytes),
                  sendbuf, bytes);
  }

  // Inter phase: every non-root-domain leader pushes its slab to the root.
  if (rank == t.leader && t.my_dom != rd) {
    lo.conc_hint(nd - 1);
    lo.cma_write(root, root, slab_off, slab_out, slab_bytes);
    lo.signal(root);
  }
  if (rank == root) {
    lo.conc_hint(nd - 1);
    for (int d = 0; d < nd; ++d) {
      if (d != rd) {
        lo.wait_signal(t.h.domain(d).leader);
      }
    }
  }
  return sched;
}

// ---- Bcast ----

std::unique_ptr<Schedule> compile_two_level_bcast(
    Comm& comm, void* buf, std::size_t bytes, int root,
    const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  h.elect_root_affine(root);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_bcast(comm.arch(), p, bytes);
    return compile_bcast(comm, buf, bytes, root, c.bcast,
                         sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, std::move(h));
  const int nd = t.h.ndomains();
  const int rd = t.h.domain_of(root);

  // Leader phase: relay the vector across sockets, one leader per socket.
  if (rank == t.leader) {
    const Tuner::Choice lc = pick_bcast(comm.arch(), nd, bytes);
    auto sub = compile_bcast(*t.lteam, buf, bytes, rd, lc.bcast,
                             sub_options(eff, lc), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.lteam, std::move(sub));
  }

  // Intra phase behind a gate: members must not pull before the leader's
  // copy of the vector is complete.
  if (t.dsize > 1) {
    domain_gate(lo, t);
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_bcast(view, t.dsize, bytes);
    auto sub = compile_bcast(*t.dteam, buf, bytes, t.leader_pos, ic.bcast,
                             sub_options(eff, ic), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  }
  return sched;
}

// ---- Allgather ----

std::unique_ptr<Schedule> compile_two_level_allgather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  const topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_allgather(comm.arch(), p, bytes);
    return compile_allgather(comm, sendbuf, recvbuf, bytes, c.allgather,
                             sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, h);
  const int nd = t.h.ndomains();
  const std::uint64_t slab_off = static_cast<std::uint64_t>(t.first) * bytes;

  // Phase 1: gather the domain's blocks into the leader's region of the
  // final layout (recvbuf + slab_off), so the leader exchange moves
  // finished slabs.
  if (t.dsize > 1) {
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_gather(view, t.dsize, bytes);
    CollOptions geff = sub_options(eff, ic);
    geff.in_place = eff.in_place;
    const void* src =
        eff.in_place ? bptr(recvbuf, static_cast<std::size_t>(rank) * bytes)
                     : sendbuf;
    void* slab_recv =
        rank == t.leader
            ? bptr(recvbuf, static_cast<std::size_t>(slab_off))
            : nullptr;
    auto sub = compile_gather(*t.dteam, src, slab_recv, bytes, t.leader_pos,
                              ic.gather, geff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  } else if (!eff.in_place) {
    lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(rank) * bytes),
                  sendbuf, bytes);
  }

  // Phase 2: rotating leader slab exchange. Each leader announces its slab
  // (ready-to-send to every other leader), then pulls the remaining nd-1
  // slabs starting at its successor so sources are visited staggered.
  sched->self_addr = comm.expose(recvbuf);
  lo.addr_allgather();
  if (rank == t.leader) {
    lo.conc_hint(1); // rotation: one reader per source at a time
    for (int d = 0; d < nd; ++d) {
      if (d != t.my_dom) {
        lo.signal(t.h.domain(d).leader);
      }
    }
    for (int i = 1; i < nd; ++i) {
      const topo::Domain& ed = t.h.domain((t.my_dom + i) % nd);
      const auto ed_size = static_cast<std::size_t>(ed.members.size());
      lo.wait_signal(ed.leader);
      lo.cma_read(ed.leader, ed.leader,
                  static_cast<std::uint64_t>(ed.members.front()) * bytes,
                  bptr(recvbuf,
                       static_cast<std::size_t>(ed.members.front()) * bytes),
                  ed_size * bytes);
    }
  }

  // Phase 3: leaders fan the assembled vector out inside their domain.
  if (t.dsize > 1) {
    domain_gate(lo, t);
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic =
        pick_bcast(view, t.dsize, static_cast<std::size_t>(p) * bytes);
    auto sub = compile_bcast(*t.dteam, recvbuf,
                             static_cast<std::size_t>(p) * bytes,
                             t.leader_pos, ic.bcast, sub_options(eff, ic),
                             params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  }
  // Other leaders may still be reading this rank's slab region.
  lo.barrier();
  return sched;
}

// ---- Reduce ----

std::unique_ptr<Schedule> compile_two_level_reduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    ReduceOp op, int root, const CollOptions& eff,
    const CompileParams& params) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  h.elect_root_affine(root);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_reduce(comm.arch(), p, bytes);
    return compile_reduce(comm, send, recv, count, op, root, c.reduce,
                          sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, std::move(h));
  const int rd = t.h.domain_of(root);

  // Phase 1: every domain reduces into its leader's partial vector.
  const double* lsend = send;
  if (t.dsize > 1) {
    double* partial =
        rank == t.leader
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_reduce(view, t.dsize, bytes);
    auto sub = compile_reduce(*t.dteam, send, partial, count, op,
                              t.leader_pos, ic.reduce, sub_options(eff, ic),
                              params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
    lsend = partial;
  }

  // Phase 2: leaders reduce the partials to the root (root leads its own
  // domain, so no extra hop).
  if (rank == t.leader) {
    const Tuner::Choice lc =
        pick_reduce(comm.arch(), t.h.ndomains(), bytes);
    auto sub = compile_reduce(*t.lteam, lsend, rank == root ? recv : nullptr,
                              count, op, rd, lc.reduce, sub_options(eff, lc),
                              params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.lteam, std::move(sub));
  }
  return sched;
}

// ---- Allreduce ----

std::unique_ptr<Schedule> compile_two_level_allreduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    ReduceOp op, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  const topo::Hierarchy h = topo::Hierarchy::from_arch(comm.arch(), p);
  if (p == 1 || h.trivial()) {
    const Tuner::Choice c = pick_allreduce(comm.arch(), p, bytes);
    return compile_allreduce(comm, send, recv, count, op, c.allreduce,
                             sub_options(eff, c), params);
  }

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  Teams t = make_teams(comm, h);

  // Phase 1: domain reduce into the leader's partial.
  const double* lsend = send;
  if (t.dsize > 1) {
    double* partial =
        rank == t.leader
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_reduce(view, t.dsize, bytes);
    auto sub = compile_reduce(*t.dteam, send, partial, count, op,
                              t.leader_pos, ic.reduce, sub_options(eff, ic),
                              params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
    lsend = partial;
  }

  // Phase 2: allreduce across the leaders — every leader ends up with the
  // full result in recv.
  if (rank == t.leader) {
    const Tuner::Choice lc =
        pick_allreduce(comm.arch(), t.h.ndomains(), bytes);
    auto sub = compile_allreduce(*t.lteam, lsend, recv, count, op,
                                 lc.allreduce, sub_options(eff, lc), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.lteam, std::move(sub));
  }

  // Phase 3: leaders fan the result out inside their domain.
  if (t.dsize > 1) {
    domain_gate(lo, t);
    const ArchSpec view = predict::single_socket_view(comm.arch());
    const Tuner::Choice ic = pick_bcast(view, t.dsize, bytes);
    auto sub = compile_bcast(*t.dteam, recv, bytes, t.leader_pos, ic.bcast,
                             sub_options(eff, ic), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.dteam, std::move(sub));
  }
  return sched;
}

} // namespace kacc::nbc
