#include "nbc/governor.h"

#include <algorithm>

#include "coll/tuner.h"
#include "common/error.h"
#include "common/mathutil.h"
#include "model/predict.h"

namespace kacc::nbc {

double drain_cost_us(const ArchSpec& s, std::uint64_t chunk_bytes,
                     int transfers, int cap) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  return waves * predict::cma_transfer(s, chunk_bytes, c);
}

double observed_drain_cost_us(const obs::DriftMonitor& drift,
                              const ArchSpec& s, std::uint64_t chunk_bytes,
                              int transfers, int cap) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  double t = drift.observed_T_cma(chunk_bytes, c);
  if (t < 0.0) {
    t = predict::cma_transfer(s, chunk_bytes, c);
  }
  return waves * t;
}

int optimal_admission_cap_observed(const obs::DriftMonitor& drift,
                                   const ArchSpec& s,
                                   std::uint64_t chunk_bytes, int p) {
  if (p <= 2) {
    // Degenerate as in the model path, but only claim an observed answer
    // when the c=1 cell actually has data.
    return drift.observed_T_cma(chunk_bytes, 1) >= 0.0 ? 1 : 0;
  }
  const int transfers = p - 1;
  bool any_observed = drift.observed_T_cma(chunk_bytes, 1) >= 0.0;
  int best_c = 1;
  double best_cost =
      observed_drain_cost_us(drift, s, chunk_bytes, transfers, 1);
  for (int c : coll::Tuner::throttle_candidates(s, p)) {
    if (drift.observed_T_cma(chunk_bytes, std::min(c, transfers)) >= 0.0) {
      any_observed = true;
    }
    const double cost =
        observed_drain_cost_us(drift, s, chunk_bytes, transfers, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return any_observed ? best_c : 0;
}

double shared_drain_cost_us(const ArchSpec& s, std::uint64_t chunk_bytes,
                            int transfers, int cap, int node_streams) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  return waves * predict::cma_transfer_shared(s, chunk_bytes, c,
                                              std::max(c, node_streams));
}

namespace {

struct DemandSums {
  long weight = 0;
  int demand = 0; ///< sum of per-source transfer demands (ranks - 1)
};

DemandSums demand_sums(const std::vector<TenantDemand>& tenants) {
  KACC_CHECK_MSG(!tenants.empty(), "aggregate_quotas: no tenants");
  DemandSums out;
  for (const TenantDemand& t : tenants) {
    KACC_CHECK_MSG(t.ranks >= 1 && t.weight >= 1,
                   "aggregate_quotas: ranks and weight must be >= 1");
    if (t.ranks > 1) {
      out.weight += t.weight;
      out.demand += t.ranks - 1;
    }
  }
  return out;
}

/// The candidate search shared by aggregate_quotas and its observed
/// variant: weighted shares of each total-concurrency budget, scored by
/// `drain_cost(transfers, cap, node_streams)`.
template <typename CostFn>
std::vector<int> aggregate_quota_search(
    const std::vector<TenantDemand>& tenants, const DemandSums& sums,
    CostFn&& drain_cost) {
  const auto n = tenants.size();

  // Weighted share of a total concurrency budget, floored at 1 (the
  // starvation backstop) and clamped to the tenant's standing demand.
  const auto shares = [&](int total) {
    std::vector<int> q(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (tenants[i].ranks <= 1) {
        continue;
      }
      const long raw =
          static_cast<long>(total) * tenants[i].weight / sums.weight;
      const int demand = tenants[i].ranks - 1;
      q[i] = static_cast<int>(std::clamp(raw, 1L, static_cast<long>(demand)));
    }
    return q;
  };

  // The aggregate makespan of a candidate split: every leased stream hits
  // the memory system together, so each tenant's drain pays the node-wide
  // bandwidth share while gamma stays per-source.
  const auto makespan = [&](const std::vector<int>& q) {
    int node_streams = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (tenants[i].ranks > 1) {
        node_streams += q[i];
      }
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (tenants[i].ranks <= 1) {
        continue;
      }
      worst = std::max(worst, drain_cost(tenants[i].ranks - 1, q[i],
                                         node_streams));
    }
    return worst;
  };

  std::vector<int> best = shares(static_cast<int>(n));
  double best_cost = makespan(best);
  for (int total = static_cast<int>(n) + 1; total <= sums.demand; ++total) {
    const std::vector<int> q = shares(total);
    const double cost = makespan(q);
    // Strict improvement keeps the smallest total on ties: equal makespan
    // with fewer leased credits leaves more slack for revocation churn.
    if (cost < best_cost) {
      best_cost = cost;
      best = q;
    }
  }
  return best;
}

} // namespace

std::vector<int> aggregate_quotas(const ArchSpec& s,
                                  std::uint64_t chunk_bytes,
                                  const std::vector<TenantDemand>& tenants) {
  const DemandSums sums = demand_sums(tenants);
  if (sums.weight == 0) {
    // Every tenant is a singleton: nothing contends, lease the floor.
    return std::vector<int>(tenants.size(), 1);
  }
  if (tenants.size() == 1) {
    // One registered team: the arbiter must agree with the per-team
    // governor bit-for-bit, so reuse its candidate search verbatim.
    return {optimal_admission_cap(s, chunk_bytes, tenants[0].ranks)};
  }
  return aggregate_quota_search(
      tenants, sums, [&](int transfers, int cap, int node_streams) {
        return shared_drain_cost_us(s, chunk_bytes, transfers, cap,
                                    node_streams);
      });
}

double observed_shared_drain_cost_us(const obs::DriftMonitor& drift,
                                     const ArchSpec& s,
                                     std::uint64_t chunk_bytes, int transfers,
                                     int cap, int node_streams) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  double t = drift.observed_T_cma(chunk_bytes, c);
  if (t < 0.0) {
    t = predict::cma_transfer(s, chunk_bytes, c);
  }
  // Observed mean at this team's own concurrency, stretched by the
  // model's shared/self ratio for the node-wide stream count.
  const double self = predict::cma_transfer(s, chunk_bytes, c);
  const double shared = predict::cma_transfer_shared(
      s, chunk_bytes, c, std::max(c, node_streams));
  return waves * t * (self > 0.0 ? shared / self : 1.0);
}

std::vector<int> aggregate_quotas_observed(
    const obs::DriftMonitor& drift, const ArchSpec& s,
    std::uint64_t chunk_bytes, const std::vector<TenantDemand>& tenants) {
  const DemandSums sums = demand_sums(tenants);
  if (sums.weight == 0) {
    // Singletons never contend; there is nothing observed data could
    // improve, so leave the model-derived floor leases in place.
    return {};
  }
  if (tenants.size() == 1) {
    const int oc =
        optimal_admission_cap_observed(drift, s, chunk_bytes,
                                       tenants[0].ranks);
    return oc > 0 ? std::vector<int>{oc} : std::vector<int>{};
  }
  // Without at least one full-window observed cell among the candidate
  // concurrency buckets, the search would return the model answer
  // relabeled — tell the caller to keep its model leases instead.
  int max_c = 0;
  for (const TenantDemand& t : tenants) {
    max_c = std::max(max_c, t.ranks - 1);
  }
  bool any_observed = false;
  for (int c = 1; c <= max_c && !any_observed; c *= 2) {
    any_observed = drift.observed_T_cma(chunk_bytes, c) >= 0.0;
  }
  if (!any_observed) {
    return {};
  }
  return aggregate_quota_search(
      tenants, sums, [&](int transfers, int cap, int node_streams) {
        return observed_shared_drain_cost_us(drift, s, chunk_bytes,
                                             transfers, cap, node_streams);
      });
}

int optimal_admission_cap(const ArchSpec& s, std::uint64_t chunk_bytes,
                          int p) {
  if (p <= 2) {
    return 1;
  }
  // Worst-case standing load on one source: every other rank has a chunk
  // in flight against it (two same-root bcasts reach exactly this).
  const int transfers = p - 1;
  int best_c = 1;
  double best_cost = drain_cost_us(s, chunk_bytes, transfers, 1);
  for (int c : coll::Tuner::throttle_candidates(s, p)) {
    const double cost = drain_cost_us(s, chunk_bytes, transfers, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

} // namespace kacc::nbc
