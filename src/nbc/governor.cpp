#include "nbc/governor.h"

#include <algorithm>

#include "coll/tuner.h"
#include "common/error.h"
#include "common/mathutil.h"
#include "model/predict.h"

namespace kacc::nbc {

double drain_cost_us(const ArchSpec& s, std::uint64_t chunk_bytes,
                     int transfers, int cap) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  return waves * predict::cma_transfer(s, chunk_bytes, c);
}

double observed_drain_cost_us(const obs::DriftMonitor& drift,
                              const ArchSpec& s, std::uint64_t chunk_bytes,
                              int transfers, int cap) {
  KACC_CHECK(transfers >= 0 && cap >= 1);
  if (transfers == 0) {
    return 0.0;
  }
  const auto waves = static_cast<double>(
      ceil_div(static_cast<std::uint64_t>(transfers),
               static_cast<std::uint64_t>(cap)));
  const int c = std::min(cap, transfers);
  double t = drift.observed_T_cma(chunk_bytes, c);
  if (t < 0.0) {
    t = predict::cma_transfer(s, chunk_bytes, c);
  }
  return waves * t;
}

int optimal_admission_cap_observed(const obs::DriftMonitor& drift,
                                   const ArchSpec& s,
                                   std::uint64_t chunk_bytes, int p) {
  if (p <= 2) {
    // Degenerate as in the model path, but only claim an observed answer
    // when the c=1 cell actually has data.
    return drift.observed_T_cma(chunk_bytes, 1) >= 0.0 ? 1 : 0;
  }
  const int transfers = p - 1;
  bool any_observed = drift.observed_T_cma(chunk_bytes, 1) >= 0.0;
  int best_c = 1;
  double best_cost =
      observed_drain_cost_us(drift, s, chunk_bytes, transfers, 1);
  for (int c : coll::Tuner::throttle_candidates(s, p)) {
    if (drift.observed_T_cma(chunk_bytes, std::min(c, transfers)) >= 0.0) {
      any_observed = true;
    }
    const double cost =
        observed_drain_cost_us(drift, s, chunk_bytes, transfers, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return any_observed ? best_c : 0;
}

int optimal_admission_cap(const ArchSpec& s, std::uint64_t chunk_bytes,
                          int p) {
  if (p <= 2) {
    return 1;
  }
  // Worst-case standing load on one source: every other rank has a chunk
  // in flight against it (two same-root bcasts reach exactly this).
  const int transfers = p - 1;
  int best_c = 1;
  double best_cost = drain_cost_us(s, chunk_bytes, transfers, 1);
  for (int c : coll::Tuner::throttle_candidates(s, p)) {
    const double cost = drain_cost_us(s, chunk_bytes, transfers, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

} // namespace kacc::nbc
