// The schedule compiler: lowers every CMA collective algorithm in
// src/coll into a Schedule (see schedule.h). Two modes:
//
//   * kBlocking    — the lowering replays the historical blocking
//                    implementation step for step: identical comm calls in
//                    identical order, so counters, spans, virtual times and
//                    fault-injection op ordinals are unchanged. Control
//                    exchanges are steps, executed at drain time.
//   * kNonblocking — control exchanges run eagerly at compile time (init is
//                    collective), point-to-point sync uses a counting
//                    signal lane (`tag`), barriers lower to dissemination
//                    rounds over the same lane, and large CMA transfers are
//                    chunked to `chunk_bytes` so the progress engine can
//                    pipeline and the governor can throttle mid-message.
//
// The lane-sharing correctness argument: for a fixed (src, dst) pair all
// posts and waits a schedule emits are totally ordered by program order on
// both sides, and the counting lane unblocks the k-th wait exactly after
// the k-th post — so data signals and dissemination-barrier rounds can
// share one lane per request without aliasing.
//
// Callers resolve kAuto, validate options, and handle bytes == 0 before
// compiling. Shared-memory algorithms (kShmemTree/kShmemSlot/
// kPairwiseShmem) compile in blocking mode only.
#pragma once

#include <cstddef>
#include <memory>

#include "coll/algo.h"
#include "coll/reduce.h"
#include "nbc/schedule.h"

namespace kacc {
class Comm;
} // namespace kacc

namespace kacc::nbc {

enum class Mode { kBlocking, kNonblocking };

struct CompileParams {
  Mode mode = Mode::kBlocking;
  /// Counting signal lane for nonblocking sync; ignored in blocking mode.
  int tag = -1;
  /// Pipelining grain for nonblocking CMA steps; 0 = never split.
  std::size_t chunk_bytes = 0;
};

std::unique_ptr<Schedule> compile_scatter(Comm& comm, const void* sendbuf,
                                          void* recvbuf, std::size_t bytes,
                                          int root, coll::ScatterAlgo algo,
                                          const coll::CollOptions& eff,
                                          const CompileParams& params);

std::unique_ptr<Schedule> compile_gather(Comm& comm, const void* sendbuf,
                                         void* recvbuf, std::size_t bytes,
                                         int root, coll::GatherAlgo algo,
                                         const coll::CollOptions& eff,
                                         const CompileParams& params);

std::unique_ptr<Schedule> compile_bcast(Comm& comm, void* buf,
                                        std::size_t bytes, int root,
                                        coll::BcastAlgo algo,
                                        const coll::CollOptions& eff,
                                        const CompileParams& params);

std::unique_ptr<Schedule> compile_allgather(Comm& comm, const void* sendbuf,
                                            void* recvbuf, std::size_t bytes,
                                            coll::AllgatherAlgo algo,
                                            const coll::CollOptions& eff,
                                            const CompileParams& params);

std::unique_ptr<Schedule> compile_alltoall(Comm& comm, const void* sendbuf,
                                           void* recvbuf, std::size_t bytes,
                                           coll::AlltoallAlgo algo,
                                           const coll::CollOptions& eff,
                                           const CompileParams& params);

std::unique_ptr<Schedule> compile_reduce(Comm& comm, const double* send,
                                         double* recv, std::size_t count,
                                         coll::ReduceOp op, int root,
                                         coll::ReduceAlgo algo,
                                         const coll::CollOptions& eff,
                                         const CompileParams& params);

std::unique_ptr<Schedule> compile_allreduce(Comm& comm, const double* send,
                                            double* recv, std::size_t count,
                                            coll::ReduceOp op,
                                            coll::AllreduceAlgo algo,
                                            const coll::CollOptions& eff,
                                            const CompileParams& params);

// ---- Hierarchy-aware N-level compositions (compile_hier.cpp) ----
//
// Each composition partitions the team into the ArchSpec's level tree
// (topo::Hierarchy::from_arch), runs a tuned flat algorithm inside every
// deepest domain on a SubComm view, and bridges domains through per-level
// leader teams. The sub-team phases are compiled recursively and spliced
// into one parent schedule, so the result drains blocking, runs
// nonblocking, and restarts persistent exactly like any flat schedule.
// Downward distribute phases are chunk-striped into pipeline stripes
// (CollOptions::stripe_bytes); depth and stripes default to the model's
// best plan. On a trivial hierarchy the compositions fall back to the
// tuned flat algorithm. Normally reached via the k*Algo::kHier cases of
// the compile_* dispatchers above.

std::unique_ptr<Schedule> compile_hier_scatter(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const coll::CollOptions& eff, const CompileParams& params);

std::unique_ptr<Schedule> compile_hier_gather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const coll::CollOptions& eff, const CompileParams& params);

std::unique_ptr<Schedule> compile_hier_bcast(
    Comm& comm, void* buf, std::size_t bytes, int root,
    const coll::CollOptions& eff, const CompileParams& params);

std::unique_ptr<Schedule> compile_hier_allgather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    const coll::CollOptions& eff, const CompileParams& params);

std::unique_ptr<Schedule> compile_hier_reduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    coll::ReduceOp op, int root, const coll::CollOptions& eff,
    const CompileParams& params);

std::unique_ptr<Schedule> compile_hier_allreduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    coll::ReduceOp op, const coll::CollOptions& eff,
    const CompileParams& params);

} // namespace kacc::nbc
