#include "nbc/schedule.h"

#include "coll/reduce.h"
#include "common/error.h"
#include "runtime/comm.h"

namespace kacc::nbc {

Comm& step_comm(Comm& comm, Schedule& s, const Step& st) {
  if (st.nest < 0) {
    return comm;
  }
  KACC_CHECK(st.nest < static_cast<int>(s.nested.size()));
  Comm* team = s.nested[static_cast<std::size_t>(st.nest)].team.get();
  return team != nullptr ? *team : comm;
}

void execute_step(Comm& comm, Schedule& s, const Step& st) {
  if (st.nest >= 0) {
    // Spliced sub-team step: run it against the nested view so peer ranks
    // and address slots resolve in the phase's own frame.
    KACC_CHECK(st.nest < static_cast<int>(s.nested.size()));
    Schedule::NestedTeam& nt = s.nested[static_cast<std::size_t>(st.nest)];
    Step inner = st;
    inner.nest = -1;
    execute_step(nt.team != nullptr ? *nt.team : comm, *nt.sched, inner);
    return;
  }
  switch (st.kind) {
  case StepKind::kCmaRead:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_read(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                               st.remote_off,
                  st.dst, st.bytes);
    break;
  case StepKind::kCmaWrite:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_write(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                                st.remote_off,
                   st.src, st.bytes);
    break;
  case StepKind::kLocalCopy:
    comm.local_copy(st.dst, st.src, st.bytes);
    break;
  case StepKind::kSignal:
    if (st.tag < 0) {
      comm.signal(st.peer);
    } else {
      comm.nbc_signal(st.peer, st.tag);
    }
    break;
  case StepKind::kWaitSignal:
    KACC_CHECK_MSG(st.tag < 0,
                   "tagged waits belong to the nbc progress engine");
    comm.wait_signal(st.peer);
    break;
  case StepKind::kCtrlBcast:
    comm.ctrl_bcast(st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlGather:
    comm.ctrl_gather(st.src, st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlAllgather:
    comm.ctrl_allgather(st.src, st.dst, st.bytes);
    break;
  case StepKind::kBarrier:
    comm.barrier();
    break;
  case StepKind::kShmSend:
    comm.shm_send(st.peer, st.src, st.bytes);
    break;
  case StepKind::kShmRecv:
    comm.shm_recv(st.peer, st.dst, st.bytes);
    break;
  case StepKind::kShmBcast:
    comm.shm_bcast(st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCombine:
    // Mirrors the historical charge_and_combine: apply, then charge the
    // operand stream.
    coll::combine(static_cast<coll::ReduceOp>(st.aux),
                  static_cast<double*>(st.dst),
                  static_cast<const double*>(st.src),
                  st.bytes / sizeof(double));
    comm.compute_charge(st.bytes);
    break;
  case StepKind::kConcHint:
    // Per-level concurrency hint of a composed schedule. drain()'s scope
    // restores the previous value when the schedule finishes.
    comm.recorder().conc_hint = st.peer > 1 ? st.peer : 1;
    break;
  case StepKind::kNested:
    KACC_CHECK(st.slot >= 0 && st.slot < static_cast<int>(s.thunks.size()));
    s.thunks[static_cast<std::size_t>(st.slot)](comm);
    break;
  }
}

void drain(Comm& comm, Schedule& s) {
  // Publish the compiled concurrency for the duration of the drain (RAII:
  // restored even when a step throws).
  obs::ConcHintScope conc(comm.recorder(), s.conc_hint);
  while (!s.done()) {
    execute_step(comm, s, s.steps[s.pc]);
    ++s.pc;
  }
}

} // namespace kacc::nbc
