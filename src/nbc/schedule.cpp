#include "nbc/schedule.h"

#include "common/error.h"
#include "runtime/comm.h"

namespace kacc::nbc {

void execute_step(Comm& comm, Schedule& s, const Step& st) {
  switch (st.kind) {
  case StepKind::kCmaRead:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_read(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                               st.remote_off,
                  st.dst, st.bytes);
    break;
  case StepKind::kCmaWrite:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_write(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                                st.remote_off,
                   st.src, st.bytes);
    break;
  case StepKind::kLocalCopy:
    comm.local_copy(st.dst, st.src, st.bytes);
    break;
  case StepKind::kSignal:
    if (st.tag < 0) {
      comm.signal(st.peer);
    } else {
      comm.nbc_signal(st.peer, st.tag);
    }
    break;
  case StepKind::kWaitSignal:
    KACC_CHECK_MSG(st.tag < 0,
                   "tagged waits belong to the nbc progress engine");
    comm.wait_signal(st.peer);
    break;
  case StepKind::kCtrlBcast:
    comm.ctrl_bcast(st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlGather:
    comm.ctrl_gather(st.src, st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlAllgather:
    comm.ctrl_allgather(st.src, st.dst, st.bytes);
    break;
  case StepKind::kBarrier:
    comm.barrier();
    break;
  case StepKind::kShmSend:
    comm.shm_send(st.peer, st.src, st.bytes);
    break;
  case StepKind::kShmRecv:
    comm.shm_recv(st.peer, st.dst, st.bytes);
    break;
  case StepKind::kShmBcast:
    comm.shm_bcast(st.dst, st.bytes, st.peer);
    break;
  }
}

void drain(Comm& comm, Schedule& s) {
  // Publish the compiled concurrency for the duration of the drain (RAII:
  // restored even when a step throws).
  obs::ConcHintScope conc(comm.recorder(), s.conc_hint);
  while (!s.done()) {
    execute_step(comm, s, s.steps[s.pc]);
    ++s.pc;
  }
}

} // namespace kacc::nbc
