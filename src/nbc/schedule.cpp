#include "nbc/schedule.h"

#include <cmath>

#include "coll/reduce.h"
#include "common/error.h"
#include "model/predict.h"
#include "runtime/comm.h"

namespace kacc::nbc {

Comm& step_comm(Comm& comm, Schedule& s, const Step& st) {
  if (st.nest < 0) {
    return comm;
  }
  KACC_CHECK(st.nest < static_cast<int>(s.nested.size()));
  Comm* team = s.nested[static_cast<std::size_t>(st.nest)].team.get();
  return team != nullptr ? *team : comm;
}

namespace {

/// Blame category of a leaf step for the critical-path profiler.
[[nodiscard]] obs::StepCat step_cat(StepKind k) {
  switch (k) {
  case StepKind::kCmaRead:
  case StepKind::kCmaWrite:
    return obs::StepCat::kData;
  case StepKind::kLocalCopy:
  case StepKind::kShmSend:
  case StepKind::kShmRecv:
  case StepKind::kShmBcast:
    return obs::StepCat::kCopy;
  case StepKind::kSignal:
    return obs::StepCat::kSignal;
  case StepKind::kWaitSignal:
    return obs::StepCat::kWait;
  case StepKind::kCtrlBcast:
  case StepKind::kCtrlGather:
  case StepKind::kCtrlAllgather:
    return obs::StepCat::kCtrl;
  case StepKind::kBarrier:
    return obs::StepCat::kBarrier;
  case StepKind::kCombine:
    return obs::StepCat::kCompute;
  case StepKind::kConcHint:
  case StepKind::kNested:
    break;
  }
  return obs::StepCat::kOther;
}

void execute_step_leaf(Comm& comm, Schedule& s, const Step& st) {
  switch (st.kind) {
  case StepKind::kCmaRead:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_read(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                               st.remote_off,
                  st.dst, st.bytes);
    break;
  case StepKind::kCmaWrite:
    KACC_CHECK(st.slot >= 0 &&
               st.slot < static_cast<int>(s.addrs.size()));
    comm.cma_write(st.peer, s.addrs[static_cast<std::size_t>(st.slot)] +
                                st.remote_off,
                   st.src, st.bytes);
    break;
  case StepKind::kLocalCopy:
    comm.local_copy(st.dst, st.src, st.bytes);
    break;
  case StepKind::kSignal:
    if (st.tag < 0) {
      comm.signal(st.peer);
    } else {
      comm.nbc_signal(st.peer, st.tag);
    }
    break;
  case StepKind::kWaitSignal:
    KACC_CHECK_MSG(st.tag < 0,
                   "tagged waits belong to the nbc progress engine");
    comm.wait_signal(st.peer);
    break;
  case StepKind::kCtrlBcast:
    comm.ctrl_bcast(st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlGather:
    comm.ctrl_gather(st.src, st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCtrlAllgather:
    comm.ctrl_allgather(st.src, st.dst, st.bytes);
    break;
  case StepKind::kBarrier:
    comm.barrier();
    break;
  case StepKind::kShmSend:
    comm.shm_send(st.peer, st.src, st.bytes);
    break;
  case StepKind::kShmRecv:
    comm.shm_recv(st.peer, st.dst, st.bytes);
    break;
  case StepKind::kShmBcast:
    comm.shm_bcast(st.dst, st.bytes, st.peer);
    break;
  case StepKind::kCombine:
    // Mirrors the historical charge_and_combine: apply, then charge the
    // operand stream.
    coll::combine(static_cast<coll::ReduceOp>(st.aux),
                  static_cast<double*>(st.dst),
                  static_cast<const double*>(st.src),
                  st.bytes / sizeof(double));
    comm.compute_charge(st.bytes);
    break;
  case StepKind::kConcHint:
    // Per-level concurrency hint of a composed schedule. drain()'s scope
    // restores the previous value when the schedule finishes.
    comm.recorder().conc_hint = st.peer > 1 ? st.peer : 1;
    break;
  case StepKind::kNested:
    KACC_CHECK(st.slot >= 0 && st.slot < static_cast<int>(s.thunks.size()));
    s.thunks[static_cast<std::size_t>(st.slot)](comm);
    break;
  }
}

} // namespace

void execute_step(Comm& comm, Schedule& s, const Step& st) {
  if (st.nest >= 0) {
    // Spliced sub-team step: run it against the nested view so peer ranks
    // and address slots resolve in the phase's own frame (and so the
    // attribution below sees the view, translating peers to global ranks).
    KACC_CHECK(st.nest < static_cast<int>(s.nested.size()));
    Schedule::NestedTeam& nt = s.nested[static_cast<std::size_t>(st.nest)];
    Step inner = st;
    inner.nest = -1;
    execute_step(nt.team != nullptr ? *nt.team : comm, *nt.sched, inner);
    return;
  }

  obs::Recorder& rec = comm.recorder();
  const bool ledger = rec.attrib.bound() && is_data_step(st.kind);
  // kNested thunks drain through here again (their inner steps get their
  // own records) and kConcHint is bookkeeping — logging either would
  // double-count the chain.
  const bool steplog = rec.step_logging() &&
                       st.kind != StepKind::kNested &&
                       st.kind != StepKind::kConcHint;
  if (!ledger && !steplog) {
    execute_step_leaf(comm, s, st);
    return;
  }

  const double t0 = comm.now_us();
  execute_step_leaf(comm, s, st);
  const double t1 = comm.now_us();
  const int peer_global =
      st.peer >= 0 ? comm.global_rank_of(st.peer) : st.peer;
  if (ledger) {
    // Three-point model decomposition (obs stays below model/, so the
    // predictions are computed here in the nbc layer and passed down):
    // uncontended base, this team's concurrency, node-wide shared
    // bandwidth under the current lease. node_c <= c means no foreign
    // streams — shared degenerates to self by construction.
    const int c = rec.conc_hint;
    const int node_c = comm.node_streams();
    const ArchSpec& arch = comm.arch();
    const double base = predict::cma_transfer(arch, st.bytes, 1);
    const double self =
        c > 1 ? predict::cma_transfer(arch, st.bytes, c) : base;
    const double shared =
        node_c > c
            ? predict::cma_transfer_shared(arch, st.bytes, c, node_c)
            : self;
    rec.attrib.observe(peer_global, c, node_c, st.bytes, t1 - t0, base,
                       self, shared);
    rec.flight_event(
        obs::FlightKind::kStepAttrib, peer_global,
        std::llround((t1 - t0 - shared) * 1000.0),
        obs::conc_bucket_name(obs::conc_bucket(c)));
  }
  if (steplog) {
    rec.log_step(step_cat(st.kind), t0, t1, peer_global, st.tag, st.bytes);
  }
}

void drain(Comm& comm, Schedule& s) {
  // Publish the compiled concurrency for the duration of the drain (RAII:
  // restored even when a step throws).
  obs::ConcHintScope conc(comm.recorder(), s.conc_hint);
  while (!s.done()) {
    execute_step(comm, s, s.steps[s.pc]);
    ++s.pc;
  }
}

} // namespace kacc::nbc
