#include "nbc/nbc.h"

#include <algorithm>
#include <string>
#include <utility>

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"
#include "nbc/engine.h"
#include "runtime/comm.h"

namespace kacc::nbc {

namespace detail {

struct Access {
  static Request make(Comm& comm, std::shared_ptr<RequestState> st) {
    Request r;
    r.st_ = std::move(st);
    r.comm_ = &comm;
    return r;
  }
  static const std::shared_ptr<RequestState>& state(const Request& r) {
    return r.st_;
  }
  static Comm* comm(const Request& r) { return r.comm_; }
  static void reset(Request& r) {
    r.st_.reset();
    r.comm_ = nullptr;
  }
};

} // namespace detail

using detail::Access;
using detail::Engine;
using detail::RequestState;

bool Request::completed() const { return st_ != nullptr && st_->completed; }

std::uint64_t Request::id() const { return st_ == nullptr ? 0 : st_->id; }

namespace {

CompileParams nb_params(int tag, const Options& nopts) {
  CompileParams p;
  p.mode = Mode::kNonblocking;
  p.tag = tag;
  p.chunk_bytes = nopts.chunk_bytes;
  return p;
}

void validate_nopts(const Options& nopts) {
  if (nopts.admission_cap < 0) {
    throw InvalidArgument("nbc: admission_cap must be >= 0 (0 = model)");
  }
}

std::unique_ptr<Schedule> empty_schedule(Comm& comm) {
  auto s = std::make_unique<Schedule>();
  s->rank = comm.rank();
  s->size = comm.size();
  return s;
}

/// Recompiles a persistent request's schedule against a successor team
/// after a shrink: (successor comm, translated root) -> fresh schedule.
using Recompile = std::function<std::unique_ptr<Schedule>(Comm&, int)>;

void add_persistent_gate(Schedule& sched, int tag) {
  if (sched.steps.empty()) {
    return;
  }
  // Persistent replay has no per-round control-plane rendezvous: the
  // eager address exchange ran once, at compile time. Several lowerings
  // read a peer's buffer the moment their own schedule starts
  // (direct-read bcast, the allgather phase of scatter-allgather, the
  // leader phase of the two-level compositions), which on a restart
  // races that peer's refill between rounds. Replay a dissemination
  // barrier at the head of every round so a rank's data steps only run
  // once every other rank has re-started the request — i.e. after every
  // refill. The signals share the request's counting lane; per
  // (src, dst) pair the barrier adds exactly one post and one wait per
  // round, at the head of both sides' program order, so lane counts
  // stay matched with the payload protocol.
  const int p = sched.size;
  const int rank = sched.rank;
  std::vector<Step> gate;
  for (int d = 1; d < p; d <<= 1) {
    Step sig;
    sig.kind = StepKind::kSignal;
    sig.peer = (rank + d) % p;
    sig.tag = tag;
    gate.push_back(sig);
    Step wt;
    wt.kind = StepKind::kWaitSignal;
    wt.peer = ((rank - d) % p + p) % p;
    wt.tag = tag;
    gate.push_back(wt);
  }
  sched.steps.insert(sched.steps.begin(), gate.begin(), gate.end());
}

Request finish(Comm& comm, Engine& eng, std::unique_ptr<Schedule> sched,
               int tag, const Options& nopts, const char* kind,
               std::size_t bytes, int root, bool persistent,
               bool immediate, Recompile recompile = nullptr) {
  if (persistent) {
    add_persistent_gate(*sched, tag);
  }
  std::shared_ptr<RequestState> st =
      eng.adopt(std::move(sched), tag, nopts, kind,
                static_cast<std::int64_t>(bytes), root, persistent);
  if (persistent && recompile) {
    st->recompile = [inner = std::move(recompile),
                     tag](Comm& c, int new_root) {
      std::unique_ptr<Schedule> s = inner(c, new_root);
      add_persistent_gate(*s, tag);
      return s;
    };
  }
  Request r = Access::make(comm, std::move(st));
  if (immediate) {
    eng.start(Access::state(r));
  }
  return r;
}

// ----- per-collective validation + kAuto resolution + compile -----

Request make_scatter(Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bytes, int root, coll::ScatterAlgo algo,
                     const coll::CollOptions& opts, const Options& nopts,
                     bool persistent, bool immediate) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw InvalidArgument("iscatter: root out of range");
  }
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  if (bytes == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "iscatter",
                  bytes, root, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (recvbuf == nullptr && !(opts.in_place && comm.rank() == root)) {
    throw InvalidArgument("iscatter: recvbuf required");
  }
  if (comm.rank() == root && sendbuf == nullptr) {
    throw InvalidArgument("iscatter: root needs sendbuf");
  }
  coll::CollOptions eff = opts;
  if (algo == coll::ScatterAlgo::kAuto) {
    const coll::Tuner::Choice c = coll::Tuner().scatter(comm.arch(), p, bytes);
    algo = c.scatter;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }
  auto sched = compile_scatter(comm, sendbuf, recvbuf, bytes, root, algo, eff,
                               nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "iscatter", bytes,
                root, persistent, immediate,
                [sendbuf, recvbuf, bytes, algo, eff, nopts,
                 tag](Comm& c, int nr) {
                  return compile_scatter(c, sendbuf, recvbuf, bytes, nr,
                                         algo, eff, nb_params(tag, nopts));
                });
}

Request make_gather(Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bytes, int root, coll::GatherAlgo algo,
                    const coll::CollOptions& opts, const Options& nopts,
                    bool persistent, bool immediate) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw InvalidArgument("igather: root out of range");
  }
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  if (bytes == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "igather",
                  bytes, root, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (comm.rank() == root && recvbuf == nullptr) {
    throw InvalidArgument("igather: root needs recvbuf");
  }
  if (sendbuf == nullptr && !(opts.in_place && comm.rank() == root)) {
    throw InvalidArgument("igather: sendbuf required");
  }
  coll::CollOptions eff = opts;
  if (algo == coll::GatherAlgo::kAuto) {
    const coll::Tuner::Choice c = coll::Tuner().gather(comm.arch(), p, bytes);
    algo = c.gather;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }
  auto sched = compile_gather(comm, sendbuf, recvbuf, bytes, root, algo, eff,
                              nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "igather", bytes,
                root, persistent, immediate,
                [sendbuf, recvbuf, bytes, algo, eff, nopts,
                 tag](Comm& c, int nr) {
                  return compile_gather(c, sendbuf, recvbuf, bytes, nr,
                                        algo, eff, nb_params(tag, nopts));
                });
}

Request make_bcast(Comm& comm, void* buf, std::size_t bytes, int root,
                   coll::BcastAlgo algo, const coll::CollOptions& opts,
                   const Options& nopts, bool persistent, bool immediate) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw InvalidArgument("ibcast: root out of range");
  }
  coll::validate_options(opts);
  if (opts.in_place) {
    throw InvalidArgument("bcast: in_place is not defined for bcast");
  }
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  if (bytes == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "ibcast",
                  bytes, root, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (buf == nullptr) {
    throw InvalidArgument("ibcast: buf required");
  }
  coll::CollOptions eff = opts;
  if (algo == coll::BcastAlgo::kAuto) {
    const coll::Tuner::Choice c = coll::Tuner().bcast(comm.arch(), p, bytes);
    algo = c.bcast;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
    // The two-copy shm designs have no nonblocking lowering; take the
    // closest CMA algorithm instead.
    if (algo == coll::BcastAlgo::kShmemSlot ||
        algo == coll::BcastAlgo::kShmemTree) {
      algo = coll::BcastAlgo::kKnomialRead;
    }
  } else if (algo == coll::BcastAlgo::kShmemSlot ||
             algo == coll::BcastAlgo::kShmemTree) {
    throw InvalidArgument(
        "ibcast: shared-memory algorithms have no nonblocking lowering");
  }
  auto sched = compile_bcast(comm, buf, bytes, root, algo, eff,
                             nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "ibcast", bytes,
                root, persistent, immediate,
                [buf, bytes, algo, eff, nopts, tag](Comm& c, int nr) {
                  return compile_bcast(c, buf, bytes, nr, algo, eff,
                                       nb_params(tag, nopts));
                });
}

Request make_allgather(Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t bytes, coll::AllgatherAlgo algo,
                       const coll::CollOptions& opts, const Options& nopts,
                       bool persistent, bool immediate) {
  const int p = comm.size();
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  if (bytes == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "iallgather",
                  bytes, -1, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (recvbuf == nullptr) {
    throw InvalidArgument("iallgather: recvbuf required");
  }
  if (sendbuf == nullptr && !opts.in_place) {
    throw InvalidArgument("iallgather: sendbuf required");
  }
  coll::CollOptions eff = opts;
  if (algo == coll::AllgatherAlgo::kAuto) {
    const coll::Tuner::Choice c =
        coll::Tuner().allgather(comm.arch(), p, bytes);
    algo = c.allgather;
    if (eff.ring_stride <= 0) {
      eff.ring_stride = c.ring_stride;
    }
  }
  if (algo == coll::AllgatherAlgo::kRingNeighbor) {
    coll::validate_ring_stride(p, eff.ring_stride);
  }
  auto sched = compile_allgather(comm, sendbuf, recvbuf, bytes, algo, eff,
                                 nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "iallgather", bytes,
                -1, persistent, immediate,
                [sendbuf, recvbuf, bytes, algo, eff, nopts,
                 tag](Comm& c, int) {
                  coll::CollOptions ceff = eff;
                  if (algo == coll::AllgatherAlgo::kRingNeighbor) {
                    // The stride was validated against the retired team
                    // size; re-clamp for the survivors.
                    ceff.ring_stride =
                        std::min(ceff.ring_stride, c.size() - 1);
                    if (ceff.ring_stride <= 0) {
                      ceff.ring_stride = 1;
                    }
                  }
                  return compile_allgather(c, sendbuf, recvbuf, bytes, algo,
                                           ceff, nb_params(tag, nopts));
                });
}

Request make_alltoall(Comm& comm, const void* sendbuf, void* recvbuf,
                      std::size_t bytes, coll::AlltoallAlgo algo,
                      const coll::CollOptions& opts, const Options& nopts,
                      bool persistent, bool immediate) {
  const int p = comm.size();
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  if (bytes == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "ialltoall",
                  bytes, -1, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (recvbuf == nullptr) {
    throw InvalidArgument("ialltoall: recvbuf required");
  }
  if (sendbuf == nullptr && !opts.in_place) {
    throw InvalidArgument("ialltoall: sendbuf required");
  }
  if (algo == coll::AlltoallAlgo::kAuto) {
    algo = coll::Tuner().alltoall(comm.arch(), p, bytes).alltoall;
    if (algo == coll::AlltoallAlgo::kPairwiseShmem) {
      algo = coll::AlltoallAlgo::kPairwise;
    }
  } else if (algo == coll::AlltoallAlgo::kPairwiseShmem) {
    throw InvalidArgument(
        "ialltoall: pairwise-shmem has no nonblocking lowering");
  }
  auto sched = compile_alltoall(comm, sendbuf, recvbuf, bytes, algo, opts,
                                nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "ialltoall", bytes,
                -1, persistent, immediate,
                [sendbuf, recvbuf, bytes, algo, opts, nopts,
                 tag](Comm& c, int) {
                  return compile_alltoall(c, sendbuf, recvbuf, bytes, algo,
                                          opts, nb_params(tag, nopts));
                });
}

Request make_reduce(Comm& comm, const double* send, double* recv,
                    std::size_t count, coll::ReduceOp op, int root,
                    coll::ReduceAlgo algo, const coll::CollOptions& opts,
                    const Options& nopts, bool persistent, bool immediate) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw InvalidArgument("ireduce: root out of range");
  }
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  const std::size_t bytes = count * sizeof(double);
  if (count == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "ireduce",
                  bytes, root, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (send == nullptr) {
    throw InvalidArgument("ireduce: send required");
  }
  if (comm.rank() == root && recv == nullptr) {
    throw InvalidArgument("ireduce: root needs recv");
  }
  if (algo == coll::ReduceAlgo::kAuto) {
    algo = coll::Tuner().reduce(comm.arch(), p, bytes).reduce;
  }
  auto sched = compile_reduce(comm, send, recv, count, op, root, algo, opts,
                              nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "ireduce", bytes,
                root, persistent, immediate,
                [send, recv, count, op, algo, opts, nopts,
                 tag](Comm& c, int nr) {
                  return compile_reduce(c, send, recv, count, op, nr, algo,
                                        opts, nb_params(tag, nopts));
                });
}

Request make_allreduce(Comm& comm, const double* send, double* recv,
                       std::size_t count, coll::ReduceOp op,
                       coll::AllreduceAlgo algo,
                       const coll::CollOptions& opts, const Options& nopts,
                       bool persistent, bool immediate) {
  const int p = comm.size();
  coll::validate_options(opts);
  validate_nopts(nopts);
  Engine& eng = Engine::for_comm(comm);
  const int tag = eng.claim_lane();
  const std::size_t bytes = count * sizeof(double);
  if (count == 0) {
    return finish(comm, eng, empty_schedule(comm), tag, nopts, "iallreduce",
                  bytes, -1, persistent, immediate,
                  [](Comm& c, int) { return empty_schedule(c); });
  }
  if (send == nullptr || recv == nullptr) {
    throw InvalidArgument("iallreduce: send and recv required");
  }
  if (algo == coll::AllreduceAlgo::kAuto) {
    algo = coll::Tuner().allreduce(comm.arch(), p, bytes).allreduce;
  }
  auto sched = compile_allreduce(comm, send, recv, count, op, algo, opts,
                                 nb_params(tag, nopts));
  return finish(comm, eng, std::move(sched), tag, nopts, "iallreduce", bytes,
                -1, persistent, immediate,
                [send, recv, count, op, algo, opts, nopts,
                 tag](Comm& c, int) {
                  return compile_allreduce(c, send, recv, count, op, algo,
                                           opts, nb_params(tag, nopts));
                });
}

} // namespace

// ----- public entry points -----

Request scatter_init(Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bytes, int root, coll::ScatterAlgo algo,
                     const coll::CollOptions& opts, const Options& nopts) {
  return make_scatter(comm, sendbuf, recvbuf, bytes, root, algo, opts, nopts,
                      /*persistent=*/true, /*immediate=*/false);
}

Request gather_init(Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bytes, int root, coll::GatherAlgo algo,
                    const coll::CollOptions& opts, const Options& nopts) {
  return make_gather(comm, sendbuf, recvbuf, bytes, root, algo, opts, nopts,
                     /*persistent=*/true, /*immediate=*/false);
}

Request bcast_init(Comm& comm, void* buf, std::size_t bytes, int root,
                   coll::BcastAlgo algo, const coll::CollOptions& opts,
                   const Options& nopts) {
  return make_bcast(comm, buf, bytes, root, algo, opts, nopts,
                    /*persistent=*/true, /*immediate=*/false);
}

Request allgather_init(Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t bytes, coll::AllgatherAlgo algo,
                       const coll::CollOptions& opts, const Options& nopts) {
  return make_allgather(comm, sendbuf, recvbuf, bytes, algo, opts, nopts,
                        /*persistent=*/true, /*immediate=*/false);
}

Request alltoall_init(Comm& comm, const void* sendbuf, void* recvbuf,
                      std::size_t bytes, coll::AlltoallAlgo algo,
                      const coll::CollOptions& opts, const Options& nopts) {
  return make_alltoall(comm, sendbuf, recvbuf, bytes, algo, opts, nopts,
                       /*persistent=*/true, /*immediate=*/false);
}

Request reduce_init(Comm& comm, const double* send, double* recv,
                    std::size_t count, coll::ReduceOp op, int root,
                    coll::ReduceAlgo algo, const coll::CollOptions& opts,
                    const Options& nopts) {
  return make_reduce(comm, send, recv, count, op, root, algo, opts, nopts,
                     /*persistent=*/true, /*immediate=*/false);
}

Request allreduce_init(Comm& comm, const double* send, double* recv,
                       std::size_t count, coll::ReduceOp op,
                       coll::AllreduceAlgo algo, const coll::CollOptions& opts,
                       const Options& nopts) {
  return make_allreduce(comm, send, recv, count, op, algo, opts, nopts,
                        /*persistent=*/true, /*immediate=*/false);
}

Request iscatter(Comm& comm, const void* sendbuf, void* recvbuf,
                 std::size_t bytes, int root, coll::ScatterAlgo algo,
                 const coll::CollOptions& opts, const Options& nopts) {
  return make_scatter(comm, sendbuf, recvbuf, bytes, root, algo, opts, nopts,
                      /*persistent=*/false, /*immediate=*/true);
}

Request igather(Comm& comm, const void* sendbuf, void* recvbuf,
                std::size_t bytes, int root, coll::GatherAlgo algo,
                const coll::CollOptions& opts, const Options& nopts) {
  return make_gather(comm, sendbuf, recvbuf, bytes, root, algo, opts, nopts,
                     /*persistent=*/false, /*immediate=*/true);
}

Request ibcast(Comm& comm, void* buf, std::size_t bytes, int root,
               coll::BcastAlgo algo, const coll::CollOptions& opts,
               const Options& nopts) {
  return make_bcast(comm, buf, bytes, root, algo, opts, nopts,
                    /*persistent=*/false, /*immediate=*/true);
}

Request iallgather(Comm& comm, const void* sendbuf, void* recvbuf,
                   std::size_t bytes, coll::AllgatherAlgo algo,
                   const coll::CollOptions& opts, const Options& nopts) {
  return make_allgather(comm, sendbuf, recvbuf, bytes, algo, opts, nopts,
                        /*persistent=*/false, /*immediate=*/true);
}

Request ialltoall(Comm& comm, const void* sendbuf, void* recvbuf,
                  std::size_t bytes, coll::AlltoallAlgo algo,
                  const coll::CollOptions& opts, const Options& nopts) {
  return make_alltoall(comm, sendbuf, recvbuf, bytes, algo, opts, nopts,
                       /*persistent=*/false, /*immediate=*/true);
}

Request ireduce(Comm& comm, const double* send, double* recv,
                std::size_t count, coll::ReduceOp op, int root,
                coll::ReduceAlgo algo, const coll::CollOptions& opts,
                const Options& nopts) {
  return make_reduce(comm, send, recv, count, op, root, algo, opts, nopts,
                     /*persistent=*/false, /*immediate=*/true);
}

Request iallreduce(Comm& comm, const double* send, double* recv,
                   std::size_t count, coll::ReduceOp op,
                   coll::AllreduceAlgo algo, const coll::CollOptions& opts,
                   const Options& nopts) {
  return make_allreduce(comm, send, recv, count, op, algo, opts, nopts,
                        /*persistent=*/false, /*immediate=*/true);
}

// ----- progress & completion -----

namespace {

/// A request torn down by a team shrink can only surface the failure (or,
/// for persistent requests, be re-homed through start()).
void throw_if_poisoned(const RequestState& st, const char* who) {
  if (st.poisoned) {
    throw PeerDiedError(
        std::string(who) + ": request '" + st.label +
            "' was torn down by a peer failure (team shrunk; persistent "
            "requests re-home on their next start)",
        st.poison_rank);
  }
}

} // namespace

void start(Request& req) {
  if (!req.valid()) {
    throw InvalidArgument("nbc start: invalid request");
  }
  const std::shared_ptr<RequestState>& st = Access::state(req);
  if (!st->persistent) {
    throw InvalidArgument("nbc start: request is not persistent");
  }
  Engine::for_comm(*Access::comm(req)).start(st);
}

bool test(Request& req) {
  if (!req.valid()) {
    throw InvalidArgument("nbc test: invalid request");
  }
  const std::shared_ptr<RequestState>& st = Access::state(req);
  if (!st->started) {
    throw InvalidArgument("nbc test: request was never started");
  }
  if (st->completed) {
    return true;
  }
  throw_if_poisoned(*st, "nbc test");
  Engine::for_comm(*Access::comm(req)).progress_once();
  return st->completed;
}

void wait(Request& req) {
  if (!req.valid()) {
    throw InvalidArgument("nbc wait: invalid request");
  }
  const std::shared_ptr<RequestState> st = Access::state(req);
  if (!st->started) {
    throw InvalidArgument("nbc wait: request was never started");
  }
  if (st->completed) {
    return;
  }
  throw_if_poisoned(*st, "nbc wait");
  Engine::for_comm(*Access::comm(req))
      .progress_until([&] { return st->completed; });
}

void wait_all(std::span<Request> reqs) {
  for (Request& r : reqs) {
    if (r.valid()) {
      wait(r);
    }
  }
}

std::size_t wait_any(std::span<Request> reqs) {
  Engine* eng = nullptr;
  bool any_candidate = false;
  for (const Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    if (Access::state(r)->started && !Access::state(r)->consumed) {
      if (!Access::state(r)->completed) {
        throw_if_poisoned(*Access::state(r), "nbc wait_any");
      }
      any_candidate = true;
    }
    Engine& e = Engine::for_comm(*Access::comm(r));
    if (eng == nullptr) {
      eng = &e;
    } else if (eng != &e) {
      throw InvalidArgument(
          "nbc wait_any: requests span multiple communicators");
    }
  }
  if (eng == nullptr || !any_candidate) {
    throw InvalidArgument("nbc wait_any: no waitable request");
  }
  const std::size_t n = reqs.size();
  // Rotate the scan start so that, when several candidates are already
  // complete, repeated calls return them round-robin instead of always
  // favouring the lowest index.
  auto completed_index = [&]() -> std::ptrdiff_t {
    const std::size_t first = static_cast<std::size_t>(eng->any_rr_ % n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (first + i) % n;
      const Request& r = reqs[idx];
      if (r.valid() && Access::state(r)->started &&
          !Access::state(r)->consumed && Access::state(r)->completed) {
        return static_cast<std::ptrdiff_t>(idx);
      }
    }
    return -1;
  };
  eng->progress_until([&] { return completed_index() >= 0; });
  const std::ptrdiff_t idx = completed_index();
  ++eng->any_rr_;
  Request& winner = reqs[static_cast<std::size_t>(idx)];
  // MPI_Waitany semantics: the returned request is consumed so further
  // wait_any calls never report it again. Non-persistent handles become
  // invalid (MPI_REQUEST_NULL); persistent ones stay valid for restart.
  Access::state(winner)->consumed = true;
  if (!Access::state(winner)->persistent) {
    Access::reset(winner);
  }
  return static_cast<std::size_t>(idx);
}

} // namespace kacc::nbc
