// Hierarchy-aware N-level compositions: every collective is rebuilt over
// the ArchSpec's recursive level tree (socket -> NUMA cluster -> L3
// cluster -> SMT core). One bridge phase runs per boundary level — a
// leader team relaying slabs or vectors across that boundary — plus a
// tuned flat phase inside every deepest domain, all on SubComm views
// spliced into one parent schedule. Sub-phase algorithms are chosen by
// the Tuner on the matching model view (predict::hier_bridge_view /
// hier_leaf_view), so the model prices each phase without phantom
// cross-boundary penalties. Downward phases carry explicit leader ->
// member gates because a spliced phase's control exchange runs eagerly at
// nonblocking compile time; the gates are emitted in blocking mode too so
// both modes execute the same dependence structure.
//
// Distribute phases (bcast, the fan-out of allgather/allreduce) are
// chunk-striped: the payload splits into pipeline stripes with per-stripe
// gates, so a leader forwards stripe k down-level while it is still
// receiving stripe k+1 from above. Composition depth and stripe grain
// come from CollOptions (hier_levels / stripe_bytes) or, when zero, from
// the model's best plan — the same sweep the Tuner ran, so kAuto and a
// forced kHier agree. Block distribution makes every domain a contiguous
// global rank range, so a domain's blocks form one contiguous slab of the
// root buffer and every bridge hop is a single CMA transfer per domain.
//
// At depth 2 with one stripe each composition degenerates exactly to the
// classic two-level (socket split) schedule, which is what legacy
// two-socket presets collapse to.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "coll/tuner.h"
#include "common/error.h"
#include "model/predict.h"
#include "nbc/compile.h"
#include "nbc/lower.h"
#include "runtime/comm.h"
#include "runtime/sub_comm.h"
#include "topo/hierarchy.h"

namespace kacc::nbc {

using coll::AllgatherAlgo;
using coll::AllreduceAlgo;
using coll::BcastAlgo;
using coll::CollOptions;
using coll::GatherAlgo;
using coll::ReduceAlgo;
using coll::ReduceOp;
using coll::ScatterAlgo;
using coll::Tuner;
using namespace detail;

namespace {

constexpr std::size_t kElem = sizeof(double);

std::byte* scratch_bytes(Schedule& s, std::size_t n) {
  s.scratch.emplace_back(n);
  return s.scratch.back().data();
}

/// This rank's enclosing domain at one level of the tree.
struct Frame {
  int dom = 0;        ///< domain index at this level
  int dsize = 0;      ///< member count
  int first = 0;      ///< lowest global rank of the domain (contiguous)
  int leader = 0;     ///< global rank of the domain's leader
  int leader_pos = 0; ///< leader's view rank inside the domain
};

/// This rank's view of the N-level decomposition: its ancestor chain of
/// domains, the deepest-domain fan team (every rank) and the bridge teams
/// it belongs to. bridge[0] is the level-0 leader team; bridge[l >= 1] is
/// the team of child-domain leaders inside this rank's level-(l-1) domain.
/// Every domain's leader is also the leader of the child domain containing
/// it (the chain invariant), so a rank that leads level l is a member of
/// every bridge at levels lead_from..l.
struct HierTeams {
  explicit HierTeams(topo::Hierarchy hh) : h(std::move(hh)) {}

  topo::Hierarchy h;
  int used = 1;                  ///< boundary levels composed over
  std::vector<Frame> frame;      ///< frame[l]: my domain at level l
  int lead_from = 0;             ///< coarsest level I lead; == used if none
  std::shared_ptr<Comm> fan;     ///< deepest domain view (every rank)
  std::vector<std::shared_ptr<Comm>> bridge;  ///< null when not a member
  std::vector<std::vector<int>> bridge_ranks; ///< global ranks per bridge
  std::vector<int> bridge_root;  ///< parent leader's position (l >= 1)
};

HierTeams make_hier_teams(Comm& comm, topo::Hierarchy h) {
  HierTeams t(std::move(h));
  const int rank = comm.rank();
  t.used = t.h.depth();
  t.frame.resize(static_cast<std::size_t>(t.used));
  t.lead_from = t.used;
  for (int l = 0; l < t.used; ++l) {
    Frame& f = t.frame[static_cast<std::size_t>(l)];
    f.dom = t.h.domain_at(l, rank);
    const topo::Domain& dom = t.h.domain(l, f.dom);
    f.dsize = static_cast<int>(dom.members.size());
    f.first = dom.members.front();
    f.leader = dom.leader;
    for (std::size_t i = 0; i < dom.members.size(); ++i) {
      if (dom.members[i] == f.leader) {
        f.leader_pos = static_cast<int>(i);
      }
    }
    if (f.leader == rank && t.lead_from == t.used) {
      t.lead_from = l;
    }
  }
  const Frame& deep = t.frame.back();
  t.fan = std::make_shared<SubComm>(comm,
                                    t.h.domain(t.used - 1, deep.dom).members);
  t.bridge.resize(static_cast<std::size_t>(t.used));
  t.bridge_ranks.resize(static_cast<std::size_t>(t.used));
  t.bridge_root.assign(static_cast<std::size_t>(t.used), 0);
  if (t.lead_from == 0) {
    t.bridge_ranks[0] = t.h.leaders();
    t.bridge[0] = std::make_shared<SubComm>(comm, t.bridge_ranks[0]);
  }
  for (int l = 1; l < t.used; ++l) {
    if (t.lead_from > l) {
      continue; // not a level-l leader: not in any level-l bridge
    }
    std::vector<int> members;
    const Frame& pf = t.frame[static_cast<std::size_t>(l - 1)];
    for (int c : t.h.children_of(l - 1, pf.dom)) {
      const int cl = t.h.domain(l, c).leader;
      if (cl == pf.leader) {
        t.bridge_root[static_cast<std::size_t>(l)] =
            static_cast<int>(members.size());
      }
      members.push_back(cl);
    }
    t.bridge_ranks[static_cast<std::size_t>(l)] = members;
    t.bridge[static_cast<std::size_t>(l)] =
        std::make_shared<SubComm>(comm, members);
  }
  return t;
}

/// Leader -> member release inside the deepest domain, on the parent
/// frame. Used before every spliced downward fan phase.
void fan_gate(Lower& lo, const HierTeams& t) {
  const Frame& deep = t.frame.back();
  if (deep.dsize <= 1) {
    return;
  }
  if (lo.rank == deep.leader) {
    for (int m : t.h.domain(t.used - 1, deep.dom).members) {
      if (m != lo.rank) {
        lo.signal(m);
      }
    }
  } else {
    lo.wait_signal(deep.leader);
  }
}

/// Parent leader -> child-leader release on bridge l (l >= 1). Only
/// bridge members call this.
void bridge_gate(Lower& lo, const HierTeams& t, int l) {
  const int pl = t.frame[static_cast<std::size_t>(l - 1)].leader;
  if (lo.rank == pl) {
    for (int m : t.bridge_ranks[static_cast<std::size_t>(l)]) {
      if (m != lo.rank) {
        lo.signal(m);
      }
    }
  } else {
    lo.wait_signal(pl);
  }
}

/// Coarsest level `r` leads, or h.depth() when r leads no domain.
int lead_from_of(const topo::Hierarchy& h, int r) {
  for (int l = 0; l < h.depth(); ++l) {
    if (h.is_leader_at(l, r)) {
      return l;
    }
  }
  return h.depth();
}

/// First global rank covered by `r`'s staging buffer in a rooted
/// composition: the root stages the whole user buffer; any other leader
/// stages its coarsest led domain's slab.
int slab_base(const topo::Hierarchy& h, int r, int root) {
  if (r == root) {
    return 0;
  }
  const int f = lead_from_of(h, r);
  return h.domain(f, h.domain_at(f, r)).members.front();
}

/// Child-domain leaders that transfer against `r`'s staging buffer: for
/// every level r leads (from `from_level` down), the leaders of the other
/// child domains. r's own chain needs no transfer and is excluded.
std::vector<int> chain_transfer_peers(const topo::Hierarchy& h, int r,
                                      int from_level) {
  std::vector<int> peers;
  for (int l = from_level; l <= h.depth() - 2; ++l) {
    for (int c : h.children_of(l, h.domain_at(l, r))) {
      const int cl = h.domain(l + 1, c).leader;
      if (cl != r) {
        peers.push_back(cl);
      }
    }
  }
  return peers;
}

/// Concurrent slab transfers at boundary level f: the level-f leaders
/// that are not already leaders one level up.
int level_writers(const topo::Hierarchy& h, int f) {
  const int wf = static_cast<int>(h.level(f).domains.size());
  const int up = f == 0 ? 1 : static_cast<int>(h.level(f - 1).domains.size());
  return std::max(1, wf - up);
}

// Tuner picks with the recursion/lowering guards the compositions need:
// sub-phases must lower flat, so the tuner sweeps a view with the
// deeper boundary levels dropped (flat predictors never read them —
// only the hier sweep does, and it must not recurse). kHier remaps
// remain as a safety net, and shm bcast choices route to knomial-read
// so both compile modes lower the same family.

ArchSpec flat_view(const ArchSpec& s) {
  ArchSpec v = s;
  v.sub_levels.clear();
  return v;
}

Tuner::Choice pick_scatter(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().scatter(s, p, bytes);
  if (c.scatter == ScatterAlgo::kHier) {
    c.scatter = ScatterAlgo::kThrottledRead;
    c.throttle = 4;
  }
  return c;
}

Tuner::Choice pick_gather(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().gather(s, p, bytes);
  if (c.gather == GatherAlgo::kHier) {
    c.gather = GatherAlgo::kThrottledWrite;
    c.throttle = 4;
  }
  return c;
}

Tuner::Choice pick_bcast(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().bcast(s, p, bytes);
  if (c.bcast == BcastAlgo::kShmemSlot || c.bcast == BcastAlgo::kShmemTree ||
      c.bcast == BcastAlgo::kHier) {
    c.bcast = BcastAlgo::kKnomialRead;
    if (c.throttle <= 0) {
      c.throttle = 4;
    }
  }
  return c;
}

Tuner::Choice pick_allgather(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().allgather(s, p, bytes);
  if (c.allgather == AllgatherAlgo::kHier) {
    c.allgather = AllgatherAlgo::kRingSourceRead;
    c.ring_stride = 1;
  }
  return c;
}

Tuner::Choice pick_reduce(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().reduce(s, p, bytes);
  if (c.reduce == ReduceAlgo::kHier) {
    c.reduce = ReduceAlgo::kBinomialRead;
  }
  return c;
}

Tuner::Choice pick_allreduce(const ArchSpec& sp, int p, std::size_t bytes) {
  const ArchSpec s = flat_view(sp);
  Tuner::Choice c = Tuner().allreduce(s, p, bytes);
  if (c.allreduce == AllreduceAlgo::kHier) {
    c.allreduce = AllreduceAlgo::kRecursiveDoubling;
  }
  return c;
}

/// Intra-phase options: honor an explicit caller throttle, otherwise take
/// the tuner's.
CollOptions sub_options(const CollOptions& eff, const Tuner::Choice& c) {
  CollOptions o;
  o.throttle = eff.throttle > 0 ? eff.throttle : c.throttle;
  o.ring_stride = c.ring_stride;
  return o;
}

/// Maps a hierarchy level to its ArchSpec boundary index by name; -1 when
/// the level came from native keys the spec does not model.
int boundary_index(const ArchSpec& s, const std::string& level_name) {
  const std::vector<LevelSpec> bounds = s.boundary_levels();
  for (std::size_t j = 0; j < bounds.size(); ++j) {
    if (bounds[j].name == level_name) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

/// Cost-model view for the level-l bridge phase. Falls back to the full
/// spec for native (sysfs-keyed) levels the spec does not model.
ArchSpec bridge_view_for(const ArchSpec& s, const topo::Hierarchy& h,
                         int l) {
  const int j = boundary_index(s, h.level(l).name);
  return j >= 0 ? predict::hier_bridge_view(s, j) : s;
}

/// Cost-model view for the deepest-domain fan phases.
ArchSpec leaf_view_for(const ArchSpec& s, const topo::Hierarchy& h) {
  const int j = boundary_index(s, h.level(h.depth() - 1).name);
  return j >= 0 ? predict::hier_leaf_view(s, j + 1)
                : predict::single_socket_view(s);
}

/// Resolved composition knobs: boundary levels used and pipeline stripes.
struct PlanKnobs {
  int used = 1;
  int stripes = 1;
};

/// Depth comes from eff.hier_levels, stripes from eff.stripe_bytes; any
/// zero knob is filled from the model's best plan (the same sweep the
/// Tuner ran, so kAuto and a forced kHier agree). When the caller forces
/// a depth but leaves stripes to the model, the stripe count is re-swept
/// at that depth (via cost_fn) — the global plan's stripe pick belongs to
/// the plan's own depth and can be arbitrarily wrong for the forced one.
PlanKnobs resolve_plan(const ArchSpec& s, int p, std::size_t bytes,
                       const CollOptions& eff, int hdepth, bool striped,
                       std::uint64_t striped_payload,
                       predict::HierPlan (*plan_fn)(const ArchSpec&, int,
                                                    std::uint64_t),
                       double (*cost_fn)(const ArchSpec&, int, std::uint64_t,
                                         int, int) = nullptr) {
  int levels = eff.hier_levels;
  int stripes = 1;
  bool have_stripes = !striped;
  if (striped && eff.stripe_bytes > 0) {
    stripes = static_cast<int>(std::min<std::uint64_t>(
        16, (striped_payload + eff.stripe_bytes - 1) / eff.stripe_bytes));
    have_stripes = true;
  }
  if (levels == 0) {
    const predict::HierPlan plan = plan_fn(s, p, bytes);
    levels = std::max(plan.levels, 2);
    if (!have_stripes) {
      stripes = plan.stripes;
      have_stripes = true;
    }
  }
  PlanKnobs k;
  k.used = std::clamp(levels - 1, 1, hdepth);
  if (!have_stripes && cost_fn != nullptr) {
    // Same stripe candidates and grain guard as the model's plan sweep,
    // but conditioned on the (clamped) forced depth.
    const std::uint64_t grain =
        std::max<std::uint64_t>(s.page_size, 16 * 1024);
    double best = cost_fn(s, p, bytes, k.used + 1, 1);
    for (int cand : {2, 4, 8}) {
      if (striped_payload / static_cast<std::uint64_t>(cand) < grain) {
        break;
      }
      const double c = cost_fn(s, p, bytes, k.used + 1, cand);
      if (c < best) {
        best = c;
        stripes = cand;
      }
    }
  }
  const int max_stripes = static_cast<int>(
      std::min<std::uint64_t>(16, std::max<std::uint64_t>(striped_payload, 1)));
  k.stripes = std::clamp(stripes, 1, max_stripes);
  return k;
}

/// One pipeline stripe of a distribute payload.
struct Chunk {
  std::size_t off = 0;
  std::size_t len = 0;
};

std::vector<Chunk> make_stripes(std::size_t payload, int stripes) {
  std::vector<Chunk> cs;
  const std::size_t grain =
      (payload + static_cast<std::size_t>(stripes) - 1) /
      static_cast<std::size_t>(stripes);
  for (std::size_t off = 0; off < payload; off += grain) {
    cs.push_back({off, std::min(grain, payload - off)});
  }
  return cs;
}

/// This rank's roles in the per-chunk distribute streams. Every team (a
/// bridge of sibling leaders under their parent-domain leader, or a
/// deepest domain under its leader) runs one stream: the root announces
/// each chunk with signals only, the members pull slices from the root
/// and ring-allgather them among themselves. A rank receives in exactly
/// one team — its coarsest — and roots every deeper team it leads (the
/// chain invariant makes it the parent-domain leader there), so its own
/// timeline per chunk is one ring's work plus cheap signals and chunk
/// k+1 can arrive while its subordinate teams still spread chunk k.
struct StreamRole {
  int recv_root = -1;      ///< -1: a pipeline source holding the payload
  std::vector<int> ring;   ///< fellow receiving members, ring order
  int pos = 0;             ///< this rank's slot in `ring`
  std::vector<std::vector<int>> rooted; ///< member lists of teams I feed
};

StreamRole stream_role(const HierTeams& t, int rank, bool include_top,
                       int top_root_pos) {
  StreamRole sr;
  auto classify = [&](const std::vector<int>& team, int root_pos) {
    const int n = static_cast<int>(team.size());
    if (n <= 1) {
      return;
    }
    const int root = team[static_cast<std::size_t>(root_pos)];
    std::vector<int> ring;
    int pos = 0;
    for (int i = 0; i < n; ++i) {
      const int r = team[static_cast<std::size_t>(i)];
      if (r == root) {
        continue;
      }
      if (r == rank) {
        pos = static_cast<int>(ring.size());
      }
      ring.push_back(r);
    }
    if (rank == root) {
      sr.rooted.push_back(std::move(ring));
    } else {
      sr.recv_root = root;
      sr.ring = std::move(ring);
      sr.pos = pos;
    }
  };
  for (int l = t.lead_from; l < t.used; ++l) {
    if (l == 0 && !include_top) {
      continue; // every level-0 leader already holds the vector
    }
    classify(t.bridge_ranks[static_cast<std::size_t>(l)],
             l == 0 ? top_root_pos
                    : t.bridge_root[static_cast<std::size_t>(l)]);
  }
  const Frame& deep = t.frame.back();
  if (deep.dsize > 1) {
    classify(t.h.domain(t.used - 1, deep.dom).members, deep.leader_pos);
  }
  return sr;
}

/// Chunk-striped pipeline distribute: per chunk, every receiving rank
/// waits for its team root's ready signal, pulls its slice of the chunk,
/// then ring-allgathers the remaining slices from its ring predecessor —
/// and once whole, announces the chunk to every team it roots. Roots do
/// no data work in their own streams, so a leader's stripe-(k+1) receive
/// overlaps its members' stripe-k spreading: the inter-level pipeline
/// with per-chunk dependence edges instead of a strict leader gate.
/// Buffer-release FINs (one per read edge) sit after the last chunk, off
/// the pipeline's critical path.
void distribute_pipelined(Comm& comm, Schedule& sched, Lower& lo,
                          const HierTeams& t, std::byte* buf,
                          std::size_t payload, int stripes, bool include_top,
                          int top_root_pos, bool addrs_ready) {
  if (!addrs_ready) {
    sched.self_addr = comm.expose(buf);
    lo.addr_allgather();
  }
  const StreamRole sr =
      stream_role(t, lo.rank, include_top, top_root_pos);
  const int m = static_cast<int>(sr.ring.size());
  const int next = m > 1 ? sr.ring[static_cast<std::size_t>(
                               (sr.pos + 1) % m)]
                         : -1;
  const int prev = m > 1 ? sr.ring[static_cast<std::size_t>(
                               (sr.pos - 1 + m) % m)]
                         : -1;
  for (const Chunk& c : make_stripes(payload, stripes)) {
    if (sr.recv_root >= 0) {
      const std::size_t slice =
          (c.len + static_cast<std::size_t>(m) - 1) /
          static_cast<std::size_t>(m);
      auto slice_off = [&](int idx) {
        return std::min(c.len, static_cast<std::size_t>(idx) * slice);
      };
      lo.wait_signal(sr.recv_root); // chunk c is whole at the root
      const std::size_t own = slice_off(sr.pos);
      const std::size_t own_len = slice_off(sr.pos + 1) - own;
      lo.conc_hint(m);
      if (own_len > 0) {
        lo.cma_read(sr.recv_root, sr.recv_root, c.off + own, buf + c.off + own,
                    own_len);
      }
      if (m > 1) {
        lo.signal(next); // slice `pos` of chunk c is here
        lo.conc_hint(1);
        for (int r = 1; r < m; ++r) {
          lo.wait_signal(prev); // prev holds slice pos-r of chunk c
          const std::size_t o = slice_off((sr.pos - r + m) % m);
          const std::size_t len = slice_off((sr.pos - r + m) % m + 1) - o;
          if (len > 0) {
            lo.cma_read(prev, prev, c.off + o, buf + c.off + o, len);
          }
          if (r < m - 1) {
            lo.signal(next);
          }
        }
      }
    }
    for (const std::vector<int>& team : sr.rooted) {
      for (int mem : team) {
        lo.signal(mem); // chunk c is whole here
      }
    }
  }
  if (sr.recv_root >= 0) {
    lo.signal(sr.recv_root); // FIN: done reading the root's buffer
    if (m > 1) {
      lo.signal(prev); // FIN: done reading the ring predecessor
      lo.wait_signal(next);
    }
  }
  for (const std::vector<int>& team : sr.rooted) {
    for (int mem : team) {
      lo.wait_signal(mem);
    }
  }
}

/// Top-down distribute of buf[0..payload). With one stripe this is the
/// classic gated composition — optional top-bridge bcast, then per lower
/// boundary a parent -> child-leader gate plus a spliced bridge bcast,
/// then the gated deepest fan-out — and at depth 2 it reduces exactly to
/// the legacy two-level schedule. With multiple stripes it switches to
/// the chunk pipeline above.
void distribute(Comm& comm, Schedule& sched, Lower& lo, const HierTeams& t,
                std::byte* buf, std::size_t payload, int stripes,
                bool include_top, int top_root_pos, bool addrs_ready,
                const CollOptions& eff, const CompileParams& params) {
  if (stripes > 1) {
    distribute_pipelined(comm, sched, lo, t, buf, payload, stripes,
                         include_top, top_root_pos, addrs_ready);
    return;
  }
  const Frame& deep = t.frame.back();
  const ArchSpec leaf = leaf_view_for(comm.arch(), t.h);
  for (const Chunk& c : make_stripes(payload, stripes)) {
    if (include_top && t.lead_from == 0) {
      const ArchSpec bv = bridge_view_for(comm.arch(), t.h, 0);
      const int nd0 = static_cast<int>(t.bridge_ranks[0].size());
      const Tuner::Choice lc = pick_bcast(bv, nd0, c.len);
      auto sub = compile_bcast(*t.bridge[0], buf + c.off, c.len,
                               top_root_pos, lc.bcast, sub_options(eff, lc),
                               params);
      lo.conc_hint(sub->conc_hint);
      splice(sched, t.bridge[0], std::move(sub));
    }
    for (int l = 1; l < t.used; ++l) {
      if (t.lead_from > l) {
        continue;
      }
      const int b =
          static_cast<int>(t.bridge_ranks[static_cast<std::size_t>(l)].size());
      if (b <= 1) {
        continue; // sole child: the parent leader already holds the data
      }
      bridge_gate(lo, t, l);
      const ArchSpec bv = bridge_view_for(comm.arch(), t.h, l);
      const Tuner::Choice lb = pick_bcast(bv, b, c.len);
      auto sub = compile_bcast(*t.bridge[static_cast<std::size_t>(l)],
                               buf + c.off, c.len,
                               t.bridge_root[static_cast<std::size_t>(l)],
                               lb.bcast, sub_options(eff, lb), params);
      lo.conc_hint(sub->conc_hint);
      splice(sched, t.bridge[static_cast<std::size_t>(l)], std::move(sub));
    }
    if (deep.dsize > 1) {
      fan_gate(lo, t);
      const Tuner::Choice ic = pick_bcast(leaf, deep.dsize, c.len);
      auto sub = compile_bcast(*t.fan, buf + c.off, c.len, deep.leader_pos,
                               ic.bcast, sub_options(eff, ic), params);
      lo.conc_hint(sub->conc_hint);
      splice(sched, t.fan, std::move(sub));
    }
  }
}

} // namespace

// ---- Scatter ----

std::unique_ptr<Schedule> compile_hier_scatter(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  full.elect_root_affine(root);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_scatter(comm.arch(), p, bytes);
    return compile_scatter(comm, sendbuf, recvbuf, bytes, root, c.scatter,
                           sub_options(eff, c), params);
  }
  const PlanKnobs knobs =
      resolve_plan(comm.arch(), p, bytes, eff, full.depth(), false, 0,
                   &predict::hier_plan_scatter);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int U = t.used;
  const Frame& deep = t.frame.back();
  const int nd0 = static_cast<int>(t.h.level(0).domains.size());
  const int rd0 = t.h.domain_at(0, root);
  sched->conc_hint = nd0 - 1; // concurrent leader slab reads off the root

  const int f = t.lead_from;
  const bool puller = rank != root && f < U;

  // Staging slab for this rank's coarsest led domain. A singleton deepest
  // domain with nothing below stages straight into recvbuf.
  std::byte* slab = nullptr;
  std::size_t my_slab_bytes = 0;
  if (puller) {
    my_slab_bytes =
        static_cast<std::size_t>(t.frame[static_cast<std::size_t>(f)].dsize) *
        bytes;
    slab = (f == U - 1 && deep.dsize == 1)
               ? static_cast<std::byte*>(recvbuf)
               : scratch_bytes(*sched, my_slab_bytes);
  }

  // Address setup. Depth 2 keeps the single-root exposure; deeper plans
  // publish every staging slab so child leaders can pull from any parent.
  if (U == 1) {
    if (rank == root) {
      sched->addrs[static_cast<std::size_t>(root)] = comm.expose(sendbuf);
    }
    lo.addr_bcast(root);
  } else {
    const void* expose_buf = rank == root ? sendbuf
                             : slab != nullptr
                                 ? static_cast<const void*>(slab)
                                 : static_cast<const void*>(recvbuf);
    sched->self_addr = comm.expose(expose_buf);
    lo.addr_allgather();
  }

  std::vector<int> peers; // child leaders staging out of my slab
  if (puller) {
    peers = chain_transfer_peers(t.h, rank, f);
    const int pl =
        f == 0 ? root : t.frame[static_cast<std::size_t>(f - 1)].leader;
    const std::uint64_t pull_off =
        static_cast<std::uint64_t>(
            t.frame[static_cast<std::size_t>(f)].first -
            slab_base(t.h, pl, root)) *
        bytes;
    if (pl != root) {
      lo.wait_signal(pl); // parent's slab must land before I stage out of it
    }
    lo.cma_read(pl, pl, pull_off, slab, my_slab_bytes);
    lo.signal(pl); // parent may release its slab
    for (int c : peers) {
      lo.signal(c); // my slab is ready to stage out of
    }
  }

  if (deep.leader != root) {
    fan_gate(lo, t); // members must not read the slab before it lands
  }

  if (deep.dsize > 1) {
    const ArchSpec view = leaf_view_for(comm.arch(), t.h);
    const Tuner::Choice ic = pick_scatter(view, deep.dsize, bytes);
    CollOptions ieff = sub_options(eff, ic);
    ieff.in_place = eff.in_place && deep.leader == root;
    const void* fan_src = nullptr;
    if (rank == deep.leader) {
      fan_src =
          rank == root
              ? bptr(sendbuf, static_cast<std::size_t>(deep.first) * bytes)
              : static_cast<const void*>(
                    slab +
                    static_cast<std::size_t>(
                        deep.first - t.frame[static_cast<std::size_t>(f)].first) *
                        bytes);
    }
    auto sub = compile_scatter(*t.fan, fan_src, recvbuf, bytes,
                               deep.leader_pos, ic.scatter, ieff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.fan, std::move(sub));
  } else if (rank == root && !eff.in_place) {
    lo.local_copy(recvbuf,
                  bptr(sendbuf, static_cast<std::size_t>(root) * bytes),
                  bytes);
  } else if (puller && f < U - 1) {
    // singleton deepest domain below a staged slab: my block is in there
    lo.local_copy(
        recvbuf,
        slab + static_cast<std::size_t>(
                   rank - t.frame[static_cast<std::size_t>(f)].first) *
                   bytes,
        bytes);
  }

  // Slab release: wait for every child leader that stages out of a buffer
  // this rank owns.
  if (rank == root) {
    for (int d = 0; d < nd0; ++d) {
      if (d != rd0) {
        lo.wait_signal(t.h.domain(0, d).leader);
      }
    }
    for (int c : chain_transfer_peers(t.h, root, 0)) {
      lo.wait_signal(c);
    }
  } else if (puller) {
    for (int c : peers) {
      lo.wait_signal(c);
    }
  }
  return sched;
}

// ---- Gather ----

std::unique_ptr<Schedule> compile_hier_gather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    int root, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  full.elect_root_affine(root);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_gather(comm.arch(), p, bytes);
    return compile_gather(comm, sendbuf, recvbuf, bytes, root, c.gather,
                          sub_options(eff, c), params);
  }
  const PlanKnobs knobs =
      resolve_plan(comm.arch(), p, bytes, eff, full.depth(), false, 0,
                   &predict::hier_plan_gather);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int U = t.used;
  const Frame& deep = t.frame.back();
  const int nd0 = static_cast<int>(t.h.level(0).domains.size());
  const int rd0 = t.h.domain_at(0, root);

  const int f = t.lead_from;
  const bool pusher = rank != root && f < U;

  // The leader's assembled slab of its coarsest led domain: staged in
  // scratch (or forwarded straight from sendbuf when alone at the bottom).
  std::byte* slab = nullptr;
  const void* slab_out = nullptr;
  std::size_t my_slab_bytes = 0;
  if (pusher) {
    my_slab_bytes =
        static_cast<std::size_t>(t.frame[static_cast<std::size_t>(f)].dsize) *
        bytes;
    if (f == U - 1 && deep.dsize == 1) {
      slab_out = sendbuf;
    } else {
      slab = scratch_bytes(*sched, my_slab_bytes);
      slab_out = slab;
    }
  }

  if (U == 1) {
    if (rank == root) {
      sched->addrs[static_cast<std::size_t>(root)] = comm.expose(recvbuf);
    }
    lo.addr_bcast(root);
  } else {
    const void* expose_buf = rank == root ? static_cast<const void*>(recvbuf)
                             : slab != nullptr
                                 ? static_cast<const void*>(slab)
                                 : static_cast<const void*>(sendbuf);
    sched->self_addr = comm.expose(expose_buf);
    lo.addr_allgather();
  }

  // Fan phase: every deepest domain gathers into its leader's slab.
  if (deep.dsize > 1) {
    const ArchSpec view = leaf_view_for(comm.arch(), t.h);
    const Tuner::Choice ic = pick_gather(view, deep.dsize, bytes);
    CollOptions geff = sub_options(eff, ic);
    geff.in_place = eff.in_place && deep.leader == root;
    void* fan_recv = nullptr;
    if (rank == deep.leader) {
      fan_recv =
          rank == root
              ? bptr(recvbuf, static_cast<std::size_t>(deep.first) * bytes)
              : static_cast<void*>(
                    slab +
                    static_cast<std::size_t>(
                        deep.first - t.frame[static_cast<std::size_t>(f)].first) *
                        bytes);
    }
    auto sub = compile_gather(*t.fan, sendbuf, fan_recv, bytes,
                              deep.leader_pos, ic.gather, geff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.fan, std::move(sub));
  } else if (rank == root && !eff.in_place) {
    lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(root) * bytes),
                  sendbuf, bytes);
  } else if (pusher && f < U - 1) {
    lo.local_copy(
        slab + static_cast<std::size_t>(
                   rank - t.frame[static_cast<std::size_t>(f)].first) *
                   bytes,
        sendbuf, bytes);
  }

  // Upward cascade: once its children's slabs have landed, each leader
  // pushes its assembled slab one hop up the chain.
  if (pusher) {
    for (int c : chain_transfer_peers(t.h, rank, f)) {
      lo.wait_signal(c); // children must finish writing into my slab
    }
    const int pl =
        f == 0 ? root : t.frame[static_cast<std::size_t>(f - 1)].leader;
    const std::uint64_t push_off =
        static_cast<std::uint64_t>(
            t.frame[static_cast<std::size_t>(f)].first -
            slab_base(t.h, pl, root)) *
        bytes;
    lo.conc_hint(level_writers(t.h, f));
    lo.cma_write(pl, pl, push_off, slab_out, my_slab_bytes);
    lo.signal(pl);
  }
  if (rank == root) {
    lo.conc_hint(nd0 - 1);
    for (int d = 0; d < nd0; ++d) {
      if (d != rd0) {
        lo.wait_signal(t.h.domain(0, d).leader);
      }
    }
    for (int c : chain_transfer_peers(t.h, root, 0)) {
      lo.wait_signal(c);
    }
  }
  return sched;
}

// ---- Bcast ----

std::unique_ptr<Schedule> compile_hier_bcast(
    Comm& comm, void* buf, std::size_t bytes, int root,
    const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  full.elect_root_affine(root);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_bcast(comm.arch(), p, bytes);
    return compile_bcast(comm, buf, bytes, root, c.bcast,
                         sub_options(eff, c), params);
  }
  const PlanKnobs knobs =
      resolve_plan(comm.arch(), p, bytes, eff, full.depth(), true, bytes,
                   &predict::hier_plan_bcast, &predict::hier_bcast);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int rd0 = t.h.domain_at(0, root);

  distribute(comm, *sched, lo, t, static_cast<std::byte*>(buf), bytes,
             knobs.stripes, /*include_top=*/true, rd0, /*addrs_ready=*/false,
             eff, params);
  return sched;
}

// ---- Allgather ----

std::unique_ptr<Schedule> compile_hier_allgather(
    Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
    const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  const topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_allgather(comm.arch(), p, bytes);
    return compile_allgather(comm, sendbuf, recvbuf, bytes, c.allgather,
                             sub_options(eff, c), params);
  }
  const PlanKnobs knobs = resolve_plan(
      comm.arch(), p, bytes, eff, full.depth(), true,
      static_cast<std::uint64_t>(bytes) * static_cast<std::uint64_t>(p),
      &predict::hier_plan_allgather, &predict::hier_allgather);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int U = t.used;
  const Frame& deep = t.frame.back();
  const int nd0 = static_cast<int>(t.h.level(0).domains.size());

  // Phase 1: gather each deepest domain's blocks into the leader's region
  // of the final layout, so every later hop moves finished slabs.
  if (deep.dsize > 1) {
    const ArchSpec view = leaf_view_for(comm.arch(), t.h);
    const Tuner::Choice ic = pick_gather(view, deep.dsize, bytes);
    CollOptions geff = sub_options(eff, ic);
    geff.in_place = eff.in_place;
    const void* src =
        eff.in_place ? bptr(recvbuf, static_cast<std::size_t>(rank) * bytes)
                     : sendbuf;
    void* slab_recv =
        rank == deep.leader
            ? bptr(recvbuf, static_cast<std::size_t>(deep.first) * bytes)
            : nullptr;
    auto sub = compile_gather(*t.fan, src, slab_recv, bytes, deep.leader_pos,
                              ic.gather, geff, params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.fan, std::move(sub));
  } else if (!eff.in_place) {
    lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(rank) * bytes),
                  sendbuf, bytes);
  }

  // Everyone publishes recvbuf: upward collects and the top rotation both
  // read finished slabs out of it at absolute offsets.
  sched->self_addr = comm.expose(recvbuf);
  lo.addr_allgather();

  // Phase 2a (depth >= 3): leader slabs climb the tree. Each level-l
  // leader announces its assembled slab; its parent copies the slab into
  // its own recvbuf before announcing one level up.
  for (int l = U - 1; l >= 1; --l) {
    if (t.lead_from <= l - 1) {
      lo.conc_hint(1);
      for (int c : t.h.children_of(
               l - 1, t.frame[static_cast<std::size_t>(l - 1)].dom)) {
        const topo::Domain& cd = t.h.domain(l, c);
        if (cd.leader == rank) {
          continue;
        }
        lo.wait_signal(cd.leader);
        lo.cma_read(
            cd.leader, cd.leader,
            static_cast<std::uint64_t>(cd.members.front()) * bytes,
            bptr(recvbuf,
                 static_cast<std::size_t>(cd.members.front()) * bytes),
            cd.members.size() * bytes);
      }
    } else if (t.lead_from == l) {
      lo.signal(t.frame[static_cast<std::size_t>(l - 1)].leader);
    }
  }

  // Phase 2b: rotating level-0 leader slab exchange. Each leader announces
  // its slab (ready-to-send to every other leader), then pulls the
  // remaining nd0-1 slabs starting at its successor so sources are visited
  // staggered.
  if (t.lead_from == 0) {
    lo.conc_hint(1); // rotation: one reader per source at a time
    for (int d = 0; d < nd0; ++d) {
      if (d != t.frame[0].dom) {
        lo.signal(t.h.domain(0, d).leader);
      }
    }
    for (int i = 1; i < nd0; ++i) {
      const topo::Domain& ed = t.h.domain(0, (t.frame[0].dom + i) % nd0);
      const auto ed_size = static_cast<std::size_t>(ed.members.size());
      lo.wait_signal(ed.leader);
      lo.cma_read(ed.leader, ed.leader,
                  static_cast<std::uint64_t>(ed.members.front()) * bytes,
                  bptr(recvbuf,
                       static_cast<std::size_t>(ed.members.front()) * bytes),
                  ed_size * bytes);
    }
  }

  // Phase 3: striped distribute of the assembled vector below the top.
  distribute(comm, *sched, lo, t, static_cast<std::byte*>(recvbuf),
             static_cast<std::size_t>(p) * bytes, knobs.stripes,
             /*include_top=*/false, 0, /*addrs_ready=*/true, eff, params);
  // Other leaders may still be reading this rank's slab region.
  lo.barrier();
  return sched;
}

// ---- Reduce ----

std::unique_ptr<Schedule> compile_hier_reduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    ReduceOp op, int root, const CollOptions& eff,
    const CompileParams& params) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  full.elect_root_affine(root);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_reduce(comm.arch(), p, bytes);
    return compile_reduce(comm, send, recv, count, op, root, c.reduce,
                          sub_options(eff, c), params);
  }
  const PlanKnobs knobs =
      resolve_plan(comm.arch(), p, bytes, eff, full.depth(), false, 0,
                   &predict::hier_plan_reduce);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int U = t.used;
  const Frame& deep = t.frame.back();
  const int nd0 = static_cast<int>(t.h.level(0).domains.size());
  const int rd0 = t.h.domain_at(0, root);

  // Phase 1: every deepest domain reduces into its leader's partial.
  const double* cur = send;
  if (deep.dsize > 1) {
    double* partial =
        rank == deep.leader
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec view = leaf_view_for(comm.arch(), t.h);
    const Tuner::Choice ic = pick_reduce(view, deep.dsize, bytes);
    auto sub = compile_reduce(*t.fan, send, partial, count, op,
                              deep.leader_pos, ic.reduce,
                              sub_options(eff, ic), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.fan, std::move(sub));
    if (rank == deep.leader) {
      cur = partial;
    }
  }

  // Phase 2: partials climb binomial bridge trees, deepest boundary
  // first, each bridge rooted at its parent-domain leader.
  for (int l = U - 1; l >= 1; --l) {
    if (t.lead_from > l) {
      continue;
    }
    const int b =
        static_cast<int>(t.bridge_ranks[static_cast<std::size_t>(l)].size());
    if (b <= 1) {
      continue; // sole child: my partial already covers the parent domain
    }
    const bool bridge_parent =
        rank == t.frame[static_cast<std::size_t>(l - 1)].leader;
    double* out =
        bridge_parent
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec bv = bridge_view_for(comm.arch(), t.h, l);
    const Tuner::Choice lb = pick_reduce(bv, b, bytes);
    auto sub = compile_reduce(*t.bridge[static_cast<std::size_t>(l)], cur,
                              out, count, op,
                              t.bridge_root[static_cast<std::size_t>(l)],
                              lb.reduce, sub_options(eff, lb), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.bridge[static_cast<std::size_t>(l)], std::move(sub));
    if (bridge_parent) {
      cur = out;
    }
  }

  // Phase 3: top-level leaders reduce to the root (root leads its whole
  // ancestor chain, so no extra hop).
  if (t.lead_from == 0) {
    const ArchSpec bv = bridge_view_for(comm.arch(), t.h, 0);
    const Tuner::Choice lc = pick_reduce(bv, nd0, bytes);
    auto sub = compile_reduce(*t.bridge[0], cur,
                              rank == root ? recv : nullptr, count, op, rd0,
                              lc.reduce, sub_options(eff, lc), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.bridge[0], std::move(sub));
  }
  return sched;
}

// ---- Allreduce ----

std::unique_ptr<Schedule> compile_hier_allreduce(
    Comm& comm, const double* send, double* recv, std::size_t count,
    ReduceOp op, const CollOptions& eff, const CompileParams& params) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  const topo::Hierarchy full = topo::Hierarchy::from_arch(comm.arch(), p);
  if (p == 1 || full.trivial()) {
    const Tuner::Choice c = pick_allreduce(comm.arch(), p, bytes);
    return compile_allreduce(comm, send, recv, count, op, c.allreduce,
                             sub_options(eff, c), params);
  }
  const PlanKnobs knobs =
      resolve_plan(comm.arch(), p, bytes, eff, full.depth(), true, bytes,
                   &predict::hier_plan_allreduce, &predict::hier_allreduce);

  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int rank = lo.rank;
  HierTeams t = make_hier_teams(comm, full.truncated(knobs.used));
  const int U = t.used;
  const Frame& deep = t.frame.back();
  const int nd0 = static_cast<int>(t.h.level(0).domains.size());

  // Phase 1: deepest domain reduce into the leader's partial.
  const double* cur = send;
  if (deep.dsize > 1) {
    double* partial =
        rank == deep.leader
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec view = leaf_view_for(comm.arch(), t.h);
    const Tuner::Choice ic = pick_reduce(view, deep.dsize, bytes);
    auto sub = compile_reduce(*t.fan, send, partial, count, op,
                              deep.leader_pos, ic.reduce,
                              sub_options(eff, ic), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.fan, std::move(sub));
    if (rank == deep.leader) {
      cur = partial;
    }
  }

  // Phase 2: partials climb bridge trees to the level-0 leaders.
  for (int l = U - 1; l >= 1; --l) {
    if (t.lead_from > l) {
      continue;
    }
    const int b =
        static_cast<int>(t.bridge_ranks[static_cast<std::size_t>(l)].size());
    if (b <= 1) {
      continue;
    }
    const bool bridge_parent =
        rank == t.frame[static_cast<std::size_t>(l - 1)].leader;
    double* out =
        bridge_parent
            ? reinterpret_cast<double*>(scratch_bytes(*sched, bytes))
            : nullptr;
    const ArchSpec bv = bridge_view_for(comm.arch(), t.h, l);
    const Tuner::Choice lb = pick_reduce(bv, b, bytes);
    auto sub = compile_reduce(*t.bridge[static_cast<std::size_t>(l)], cur,
                              out, count, op,
                              t.bridge_root[static_cast<std::size_t>(l)],
                              lb.reduce, sub_options(eff, lb), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.bridge[static_cast<std::size_t>(l)], std::move(sub));
    if (bridge_parent) {
      cur = out;
    }
  }

  // Phase 3: allreduce across the top leaders — every level-0 leader ends
  // up with the full result in recv.
  if (t.lead_from == 0) {
    const ArchSpec bv = bridge_view_for(comm.arch(), t.h, 0);
    const Tuner::Choice lc = pick_allreduce(bv, nd0, bytes);
    auto sub = compile_allreduce(*t.bridge[0], cur, recv, count, op,
                                 lc.allreduce, sub_options(eff, lc), params);
    lo.conc_hint(sub->conc_hint);
    splice(*sched, t.bridge[0], std::move(sub));
  }

  // Phase 4: striped distribute of the result below the top.
  distribute(comm, *sched, lo, t, reinterpret_cast<std::byte*>(recv), bytes,
             knobs.stripes, /*include_top=*/false, 0, /*addrs_ready=*/false,
             eff, params);
  return sched;
}

} // namespace kacc::nbc
