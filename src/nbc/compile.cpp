// Lowers the CMA collective algorithms to Schedule IR. The algorithm
// bodies here are the single source of truth: the blocking entry points in
// src/coll compile + drain, the nonblocking API compiles + hands off to
// the progress engine. Blocking mode replays the historical per-rank comm
// call sequence exactly (same ops, same order, same sizes) so counters,
// spans, simulated virtual times and fault-injection op ordinals are
// unchanged by the refactor.
#include "nbc/compile.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/mathutil.h"
#include "nbc/lower.h"
#include "runtime/comm.h"

namespace kacc::nbc::detail {

KnomialNode knomial_node(int vrank, int p, int k) {
  const int radix = k + 1;
  KnomialNode node;
  int d_low = 0;
  if (vrank > 0) {
    int v = vrank;
    while (v % radix == 0) {
      v /= radix;
      ++d_low;
    }
    std::int64_t unit = 1;
    for (int i = 0; i < d_low; ++i) {
      unit *= radix;
    }
    node.parent = vrank - (v % radix) * static_cast<int>(unit);
  } else {
    std::int64_t unit = 1;
    while (unit < p) {
      unit *= radix;
      ++d_low;
    }
  }
  std::int64_t unit = 1;
  for (int i = 1; i < d_low; ++i) {
    unit *= radix;
  }
  for (int d = d_low - 1; d >= 0; --d) {
    for (int a = 1; a <= k; ++a) {
      const std::int64_t c = vrank + static_cast<std::int64_t>(a) * unit;
      if (c < p) {
        node.children.push_back(static_cast<int>(c));
      }
    }
    unit /= radix;
  }
  return node;
}

std::unique_ptr<Schedule> make_schedule(Comm& comm) {
  auto s = std::make_unique<Schedule>();
  s->rank = comm.rank();
  s->size = comm.size();
  s->addrs.assign(static_cast<std::size_t>(comm.size()), 0);
  s->tokens.assign(static_cast<std::size_t>(comm.size()), 0);
  return s;
}

void splice(Schedule& parent, std::shared_ptr<Comm> team,
            std::unique_ptr<Schedule> sub) {
  KACC_CHECK(sub != nullptr);
  // Re-home nested phases the sub-schedule spliced itself (e.g. the gather
  // inside a reduce inside an allreduce): indices shift by the parent's
  // current count, and a phase that ran on the sub's own comm now runs on
  // `team`.
  const int base = static_cast<int>(parent.nested.size());
  for (Schedule::NestedTeam& nt : sub->nested) {
    if (nt.team == nullptr) {
      nt.team = team;
    }
    parent.nested.push_back(std::move(nt));
  }
  sub->nested.clear();
  const int self = static_cast<int>(parent.nested.size());
  for (const Step& st : sub->steps) {
    Step& out = parent.steps.emplace_back();
    out = st;
    out.nest = st.nest >= 0 ? base + st.nest : self;
  }
  sub->steps.clear(); // executed via the parent's copies
  parent.nested.push_back({std::move(team), std::move(sub)});
}

} // namespace kacc::nbc::detail

namespace kacc::nbc {

using coll::CollOptions;
using namespace detail;

// ---- Scatter (§IV-A) ----

std::unique_ptr<Schedule> compile_scatter(Comm& comm, const void* sendbuf,
                                          void* recvbuf, std::size_t bytes,
                                          int root, coll::ScatterAlgo algo,
                                          const CollOptions& eff,
                                          const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int p = lo.p;
  const int rank = lo.rank;
  if (p == 1) {
    if (!eff.in_place) {
      lo.local_copy(recvbuf, sendbuf, bytes);
    }
    return sched;
  }

  switch (algo) {
    case coll::ScatterAlgo::kParallelRead: {
      sched->conc_hint = p - 1; // every non-root reads the root at once
      if (rank == root) {
        sched->addrs[static_cast<std::size_t>(root)] = comm.expose(sendbuf);
      }
      lo.addr_bcast(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(recvbuf,
                        bptr(sendbuf, static_cast<std::size_t>(root) * bytes),
                        bytes);
        }
      } else {
        lo.cma_read(root, root, static_cast<std::uint64_t>(rank) * bytes,
                    recvbuf, bytes);
      }
      lo.completion_fan_in(root);
      break;
    }
    case coll::ScatterAlgo::kSequentialWrite: {
      // Order of the address exchange is reversed vs parallel read: the
      // root gathers every receive-buffer address, then notifies on
      // completion.
      sched->self_addr = comm.expose(recvbuf);
      lo.addr_gather(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(recvbuf,
                        bptr(sendbuf, static_cast<std::size_t>(root) * bytes),
                        bytes);
        }
        for (int q = 0; q < p; ++q) {
          if (q == root) {
            continue;
          }
          lo.cma_write(q, q, 0,
                       bptr(sendbuf, static_cast<std::size_t>(q) * bytes),
                       bytes);
        }
      }
      lo.completion_fan_out(root);
      break;
    }
    case coll::ScatterAlgo::kThrottledRead: {
      const int k = throttle_k(eff, p);
      KACC_CHECK_MSG(k >= 1, "throttled scatter: k >= 1");
      sched->conc_hint = k;
      if (rank == root) {
        sched->addrs[static_cast<std::size_t>(root)] = comm.expose(sendbuf);
      }
      lo.addr_bcast(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(recvbuf,
                        bptr(sendbuf, static_cast<std::size_t>(root) * bytes),
                        bytes);
        }
        // The final-wave readers each acknowledge: a single ack from the
        // last rank is not enough because k reads complete concurrently
        // (§IV-A3).
        const int lw = last_wave_size(p, k);
        for (int i = 0; i < lw; ++i) {
          const int pos = (p - 1) - lw + i;
          lo.wait_signal(nonroot_rank(pos, root));
        }
        break;
      }
      const int pos = nonroot_pos(rank, root);
      if (pos - k >= 0) {
        lo.wait_signal(nonroot_rank(pos - k, root));
      }
      lo.cma_read(root, root, static_cast<std::uint64_t>(rank) * bytes,
                  recvbuf, bytes);
      if (pos + k <= p - 2) {
        lo.signal(nonroot_rank(pos + k, root));
      }
      const int lw = last_wave_size(p, k);
      if (pos >= (p - 1) - lw) {
        lo.signal(root);
      }
      break;
    }
    case coll::ScatterAlgo::kHier:
      return compile_hier_scatter(comm, sendbuf, recvbuf, bytes, root,
                                       eff, params);
    case coll::ScatterAlgo::kAuto:
      throw InternalError("compile_scatter: unresolved kAuto");
  }
  return sched;
}

// ---- Gather (§IV-B) ----

std::unique_ptr<Schedule> compile_gather(Comm& comm, const void* sendbuf,
                                         void* recvbuf, std::size_t bytes,
                                         int root, coll::GatherAlgo algo,
                                         const CollOptions& eff,
                                         const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int p = lo.p;
  const int rank = lo.rank;
  if (p == 1) {
    if (!eff.in_place) {
      lo.local_copy(recvbuf, sendbuf, bytes);
    }
    return sched;
  }

  switch (algo) {
    case coll::GatherAlgo::kParallelWrite: {
      sched->conc_hint = p - 1; // every non-root writes the root at once
      if (rank == root) {
        sched->addrs[static_cast<std::size_t>(root)] = comm.expose(recvbuf);
      }
      lo.addr_bcast(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(root) * bytes),
                        sendbuf, bytes);
        }
      } else {
        lo.cma_write(root, root, static_cast<std::uint64_t>(rank) * bytes,
                     sendbuf, bytes);
      }
      lo.completion_fan_in(root);
      break;
    }
    case coll::GatherAlgo::kSequentialRead: {
      sched->self_addr = comm.expose(sendbuf);
      lo.addr_gather(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(root) * bytes),
                        sendbuf, bytes);
        }
        for (int q = 0; q < p; ++q) {
          if (q == root) {
            continue;
          }
          lo.cma_read(q, q, 0,
                      bptr(recvbuf, static_cast<std::size_t>(q) * bytes),
                      bytes);
        }
      }
      lo.completion_fan_out(root);
      break;
    }
    case coll::GatherAlgo::kThrottledWrite: {
      const int k = throttle_k(eff, p);
      KACC_CHECK_MSG(k >= 1, "throttled gather: k >= 1");
      sched->conc_hint = k;
      if (rank == root) {
        sched->addrs[static_cast<std::size_t>(root)] = comm.expose(recvbuf);
      }
      lo.addr_bcast(root);
      if (rank == root) {
        if (!eff.in_place) {
          lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(root) * bytes),
                        sendbuf, bytes);
        }
        const int lw = last_wave_size(p, k);
        for (int i = 0; i < lw; ++i) {
          const int pos = (p - 1) - lw + i;
          lo.wait_signal(nonroot_rank(pos, root));
        }
        break;
      }
      const int pos = nonroot_pos(rank, root);
      if (pos - k >= 0) {
        lo.wait_signal(nonroot_rank(pos - k, root));
      }
      lo.cma_write(root, root, static_cast<std::uint64_t>(rank) * bytes,
                   sendbuf, bytes);
      if (pos + k <= p - 2) {
        lo.signal(nonroot_rank(pos + k, root));
      }
      const int lw = last_wave_size(p, k);
      if (pos >= (p - 1) - lw) {
        lo.signal(root);
      }
      break;
    }
    case coll::GatherAlgo::kHier:
      return compile_hier_gather(comm, sendbuf, recvbuf, bytes, root,
                                      eff, params);
    case coll::GatherAlgo::kAuto:
      throw InternalError("compile_gather: unresolved kAuto");
  }
  return sched;
}

// ---- Bcast (§V-B) ----

std::unique_ptr<Schedule> compile_bcast(Comm& comm, void* buf,
                                        std::size_t bytes, int root,
                                        coll::BcastAlgo algo,
                                        const CollOptions& eff,
                                        const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int p = lo.p;
  const int rank = lo.rank;
  if (p == 1) {
    return sched;
  }

  switch (algo) {
    case coll::BcastAlgo::kDirectRead: {
      sched->conc_hint = p - 1; // every non-root reads the root at once
      if (rank == root) {
        sched->addrs[static_cast<std::size_t>(root)] = comm.expose(buf);
      }
      lo.addr_bcast(root);
      if (rank != root) {
        lo.cma_read(root, root, 0, buf, bytes);
      }
      lo.completion_fan_in(root);
      break;
    }
    case coll::BcastAlgo::kDirectWrite: {
      sched->self_addr = comm.expose(buf);
      lo.addr_gather(root);
      if (rank == root) {
        for (int q = 0; q < p; ++q) {
          if (q != root) {
            lo.cma_write(q, q, 0, buf, bytes);
          }
        }
      }
      lo.completion_fan_out(root);
      break;
    }
    case coll::BcastAlgo::kKnomialRead: {
      // k-nomial read tree (§V-B2): up to k children read a parent's
      // buffer concurrently per round.
      const int k = throttle_k(eff, p);
      sched->conc_hint = k;
      const int vrank = pmod(rank - root, p);
      auto actual = [&](int v) { return pmod(v + root, p); };
      sched->self_addr = comm.expose(buf);
      lo.addr_allgather();
      const KnomialNode node = knomial_node(vrank, p, k);
      if (node.parent >= 0) {
        const int parent = actual(node.parent);
        lo.wait_signal(parent);
        lo.cma_read(parent, parent, 0, buf, bytes);
        lo.signal(parent); // FIN: parent's buffer no longer needed by us
      }
      // Serve children one level at a time: signal a wave of <= k readers,
      // then collect their FINs before releasing the next wave.
      std::size_t i = 0;
      while (i < node.children.size()) {
        const std::size_t wave_end = std::min(
            i + static_cast<std::size_t>(k), node.children.size());
        for (std::size_t c = i; c < wave_end; ++c) {
          lo.signal(actual(node.children[c]));
        }
        for (std::size_t c = i; c < wave_end; ++c) {
          lo.wait_signal(actual(node.children[c]));
        }
        i = wave_end;
      }
      break;
    }
    case coll::BcastAlgo::kKnomialWrite: {
      // k-nomial write tree: parents push into children's buffers; no FIN
      // needed because the writer owns the pacing.
      const int k = throttle_k(eff, p);
      const int vrank = pmod(rank - root, p);
      auto actual = [&](int v) { return pmod(v + root, p); };
      sched->self_addr = comm.expose(buf);
      lo.addr_allgather();
      const KnomialNode node = knomial_node(vrank, p, k);
      if (node.parent >= 0) {
        lo.wait_signal(actual(node.parent));
      }
      for (int child_v : node.children) {
        const int child = actual(child_v);
        lo.cma_write(child, child, 0, buf, bytes);
        lo.signal(child);
      }
      break;
    }
    case coll::BcastAlgo::kScatterAllgather: {
      // Van de Geijn (§V-B3): sequential-write scatter of eta/p chunks,
      // then a contention-free ring-source allgather of the chunks.
      const std::size_t base = bytes / static_cast<std::size_t>(p);
      const std::size_t rem = bytes % static_cast<std::size_t>(p);
      auto count_of = [&](int q) {
        return base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
      };
      auto off_of = [&](int q) {
        const auto uq = static_cast<std::size_t>(q);
        return uq * base + std::min(uq, rem);
      };
      sched->self_addr = comm.expose(buf);
      lo.addr_allgather();
      if (rank == root) {
        for (int q = 0; q < p; ++q) {
          if (q == root || count_of(q) == 0) {
            continue;
          }
          lo.cma_write(q, q, off_of(q), bptr(buf, off_of(q)), count_of(q));
        }
      }
      lo.barrier();
      for (int step = 1; step < p; ++step) {
        const int src = pmod(rank - step, p);
        if (count_of(src) == 0) {
          continue;
        }
        lo.cma_read(src, src, off_of(src), bptr(buf, off_of(src)),
                    count_of(src));
      }
      lo.barrier();
      break;
    }
    case coll::BcastAlgo::kShmemTree: {
      const int relative = pmod(rank - root, p);
      auto actual = [&](int v) { return pmod(v + root, p); };
      int mask = 1;
      while (mask < p) {
        if ((relative & mask) != 0) {
          lo.shm_recv(actual(relative - mask), buf, bytes);
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (relative + mask < p) {
          lo.shm_send(actual(relative + mask), buf, bytes);
        }
        mask >>= 1;
      }
      break;
    }
    case coll::BcastAlgo::kShmemSlot:
      lo.shm_bcast(buf, bytes, root);
      break;
    case coll::BcastAlgo::kHier:
      return compile_hier_bcast(comm, buf, bytes, root, eff, params);
    case coll::BcastAlgo::kAuto:
      throw InternalError("compile_bcast: unresolved kAuto");
  }
  return sched;
}

// ---- Allgather (§V-A) ----

std::unique_ptr<Schedule> compile_allgather(Comm& comm, const void* sendbuf,
                                            void* recvbuf, std::size_t bytes,
                                            coll::AllgatherAlgo algo,
                                            const CollOptions& eff,
                                            const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int p = lo.p;
  const int rank = lo.rank;
  auto block = [&](int idx) {
    return bptr(recvbuf, static_cast<std::size_t>(idx) * bytes);
  };
  auto place_own_block = [&] {
    if (!eff.in_place) {
      lo.local_copy(block(rank), sendbuf, bytes);
    }
  };
  // Exchanges everyone's recvbuf address after the own-block copy, so
  // every rank may read any already-valid block of any peer.
  auto exchange_recv_addrs = [&] {
    sched->self_addr = comm.expose(recvbuf);
    lo.addr_allgather();
  };
  if (p == 1) {
    if (!eff.in_place) {
      lo.local_copy(recvbuf, sendbuf, bytes);
    }
    return sched;
  }

  switch (algo) {
    case coll::AllgatherAlgo::kRingSourceRead: {
      // Ring-Source (§V-A2): step i reads block (rank - i) directly from
      // its original source — contention free, no per-step sync.
      place_own_block();
      exchange_recv_addrs();
      // The blocking drain orders every peer's own-block copy before our
      // reads through the address-exchange step; the nonblocking lowering
      // exchanges addresses eagerly at compile time, so it must fence.
      if (!lo.blocking() && !eff.in_place) {
        lo.barrier();
      }
      for (int step = 1; step < p; ++step) {
        const int src = pmod(rank - step, p);
        lo.cma_read(src, src, static_cast<std::uint64_t>(src) * bytes,
                    block(src), bytes);
      }
      lo.barrier();
      break;
    }
    case coll::AllgatherAlgo::kRingSourceWrite: {
      place_own_block();
      exchange_recv_addrs();
      for (int step = 1; step < p; ++step) {
        const int dst = pmod(rank + step, p);
        lo.cma_write(dst, dst, static_cast<std::uint64_t>(rank) * bytes,
                     block(rank), bytes);
      }
      lo.barrier();
      break;
    }
    case coll::AllgatherAlgo::kRingNeighbor: {
      // Ring-Neighbor-j (§V-A1): every step reads one block from the fixed
      // neighbor (rank - j). Correct only when gcd(p, j) == 1.
      const int j = eff.ring_stride > 0 ? eff.ring_stride : 1;
      KACC_CHECK_MSG(gcd_u64(static_cast<std::uint64_t>(p),
                             static_cast<std::uint64_t>(pmod(j, p))) == 1,
                     "ring-neighbor allgather requires gcd(p, j) == 1");
      place_own_block();
      exchange_recv_addrs();
      // Step 1 reads `up`'s own block with no signal gate; as above, only
      // the blocking drain sequences that copy behind the address step.
      if (!lo.blocking() && !eff.in_place) {
        lo.barrier();
      }
      const int up = pmod(rank - j, p);   // we read from up
      const int down = pmod(rank + j, p); // down reads from us
      for (int step = 1; step < p; ++step) {
        const int blk = pmod(rank - step * j, p);
        if (step >= 2) {
          // Wait for the neighbor to have finished step-1.
          lo.wait_signal(up);
        }
        lo.cma_read(up, up, static_cast<std::uint64_t>(blk) * bytes,
                    block(blk), bytes);
        if (step <= p - 2) {
          lo.signal(down);
        }
      }
      lo.barrier();
      break;
    }
    case coll::AllgatherAlgo::kRecursiveDoubling: {
      // §V-A3: lg p pairwise exchanges of doubling extent; non-power-of-two
      // counts get a fold-in pre-step and a replication post-step.
      place_own_block();
      exchange_recv_addrs();
      int r = 1;
      while (r * 2 <= p) {
        r *= 2; // largest power of two <= p
      }
      const int extra = p - r;

      if (rank >= r) {
        lo.signal(rank - r);
      } else if (rank + r < p) {
        lo.wait_signal(rank + r);
        const int src = rank + r;
        lo.cma_read(src, src, static_cast<std::uint64_t>(src) * bytes,
                    block(src), bytes);
      }

      if (rank < r) {
        for (int dist = 1; dist < r; dist *= 2) {
          const int partner = rank ^ dist;
          const int base = partner & ~(dist - 1);
          lo.signal(partner);
          lo.wait_signal(partner);
          // Primary region: partner's group blocks [base, base + dist).
          lo.cma_read(partner, partner,
                      static_cast<std::uint64_t>(base) * bytes, block(base),
                      static_cast<std::size_t>(dist) * bytes);
          // Shadow region: the folded blocks above r.
          const int shadow_lo = base;
          const int shadow_hi = std::min(base + dist, extra);
          if (shadow_hi > shadow_lo) {
            lo.cma_read(partner, partner,
                        static_cast<std::uint64_t>(shadow_lo + r) * bytes,
                        block(shadow_lo + r),
                        static_cast<std::size_t>(shadow_hi - shadow_lo) *
                            bytes);
          }
          // FIN so the partner may proceed to the next level.
          lo.signal(partner);
          lo.wait_signal(partner);
        }
      }

      if (rank < r && rank + r < p) {
        lo.signal(rank + r);
      } else if (rank >= r) {
        const int src = rank - r;
        lo.wait_signal(src);
        if (rank > 0) {
          lo.cma_read(src, src, 0, block(0),
                      static_cast<std::size_t>(rank) * bytes);
        }
        if (rank + 1 < p) {
          lo.cma_read(src, src, static_cast<std::uint64_t>(rank + 1) * bytes,
                      block(rank + 1),
                      static_cast<std::size_t>(p - rank - 1) * bytes);
        }
      }
      lo.barrier();
      break;
    }
    case coll::AllgatherAlgo::kBruck: {
      // §V-A4: gather into a rotated staging buffer with doubling reads
      // from (rank + 2^k), then shift into place.
      sched->scratch.emplace_back(static_cast<std::size_t>(p) * bytes);
      std::byte* tmp = sched->scratch.back().data();
      const void* own =
          eff.in_place ? static_cast<const void*>(block(rank)) : sendbuf;
      lo.local_copy(tmp, own, bytes);
      sched->self_addr = comm.expose(tmp);
      lo.addr_allgather();

      int have = 1;
      while (have < p) {
        const int take = std::min(have, p - have);
        const int from = pmod(rank + have, p); // we read from
        const int to = pmod(rank - have, p);   // reads from us
        lo.signal(to);
        lo.wait_signal(from);
        lo.cma_read(from, from, 0,
                    tmp + static_cast<std::size_t>(have) * bytes,
                    static_cast<std::size_t>(take) * bytes);
        lo.signal(from);
        lo.wait_signal(to);
        have += take;
      }
      // tmp[j] holds block (rank + j) mod p; shift down by rank blocks.
      for (int j = 0; j < p; ++j) {
        lo.local_copy(block(pmod(rank + j, p)),
                      tmp + static_cast<std::size_t>(j) * bytes, bytes);
      }
      lo.barrier();
      break;
    }
    case coll::AllgatherAlgo::kHier:
      return compile_hier_allgather(comm, sendbuf, recvbuf, bytes, eff,
                                         params);
    case coll::AllgatherAlgo::kAuto:
      throw InternalError("compile_allgather: unresolved kAuto");
  }
  return sched;
}

// ---- Alltoall (§IV-C) ----

std::unique_ptr<Schedule> compile_alltoall(Comm& comm, const void* sendbuf,
                                           void* recvbuf, std::size_t bytes,
                                           coll::AlltoallAlgo algo,
                                           const CollOptions& eff,
                                           const CompileParams& params) {
  auto sched = make_schedule(comm);
  Lower lo(comm, *sched, params);
  const int p = lo.p;
  const int rank = lo.rank;
  auto copy_own_block = [&] {
    if (!eff.in_place) {
      lo.local_copy(bptr(recvbuf, static_cast<std::size_t>(rank) * bytes),
                    bptr(sendbuf, static_cast<std::size_t>(rank) * bytes),
                    bytes);
    }
  };
  if (p == 1) {
    if (!eff.in_place) {
      lo.local_copy(recvbuf, sendbuf, bytes);
    }
    return sched;
  }

  switch (algo) {
    case coll::AlltoallAlgo::kPairwise: {
      // Native CMA pairwise (§IV-C1): one upfront address allgather, then
      // p-1 contention-free reads from distinct peers.
      copy_own_block();
      sched->self_addr = comm.expose(sendbuf);
      lo.addr_allgather();
      for (int step = 1; step < p; ++step) {
        const int peer = pairwise_read_peer(rank, step, p);
        if (peer == rank) {
          continue; // XOR schedule never hits this; modular cannot either
        }
        lo.cma_read(peer, peer, static_cast<std::uint64_t>(rank) * bytes,
                    bptr(recvbuf, static_cast<std::size_t>(peer) * bytes),
                    bytes);
      }
      // Peers keep reading from our sendbuf until their last step.
      lo.barrier();
      break;
    }
    case coll::AlltoallAlgo::kPairwisePt2pt: {
      // Same schedule, plus the RTS/FIN handshake a pt2pt rendezvous
      // protocol pays per transfer.
      copy_own_block();
      sched->self_addr = comm.expose(sendbuf);
      lo.addr_allgather();
      for (int step = 1; step < p; ++step) {
        const int read_peer = pairwise_read_peer(rank, step, p);
        const int reader = is_pow2(static_cast<std::uint64_t>(p))
                               ? (rank ^ step)
                               : pmod(rank + step, p);
        if (read_peer == rank) {
          continue;
        }
        lo.signal(reader);         // RTS: my block for you is ready
        lo.wait_signal(read_peer); // their RTS
        lo.cma_read(read_peer, read_peer,
                    static_cast<std::uint64_t>(rank) * bytes,
                    bptr(recvbuf,
                         static_cast<std::size_t>(read_peer) * bytes),
                    bytes);
        lo.signal(read_peer);  // FIN: done with their buffer
        lo.wait_signal(reader); // their FIN before the next step
      }
      lo.barrier();
      break;
    }
    case coll::AlltoallAlgo::kPairwiseShmem: {
      copy_own_block();
      for (int step = 1; step < p; ++step) {
        const int dst = pmod(rank + step, p);
        const int src = pmod(rank - step, p);
        // Deadlock avoidance on the bounded pipes: the minimum rank of
        // each send cycle receives first, breaking the circular wait.
        const int cycle_min =
            rank % static_cast<int>(gcd_u64(static_cast<std::uint64_t>(p),
                                            static_cast<std::uint64_t>(step)));
        const bool recv_first = rank == cycle_min;
        auto do_send = [&] {
          lo.shm_send(dst, bptr(sendbuf, static_cast<std::size_t>(dst) * bytes),
                      bytes);
        };
        auto do_recv = [&] {
          lo.shm_recv(src, bptr(recvbuf, static_cast<std::size_t>(src) * bytes),
                      bytes);
        };
        if (recv_first) {
          do_recv();
          do_send();
        } else {
          do_send();
          do_recv();
        }
      }
      break;
    }
    case coll::AlltoallAlgo::kBruck: {
      // §IV-C2: ceil(log2 p) steps, each moving the blocks whose index has
      // the step bit set; pays pack/unpack copies per step. Always stages
      // through tmp, so in-place is free.
      sched->scratch.emplace_back(static_cast<std::size_t>(p) * bytes);
      sched->scratch.emplace_back(static_cast<std::size_t>(p) * bytes);
      sched->scratch.emplace_back(static_cast<std::size_t>(p) * bytes);
      std::byte* tmp = sched->scratch[0].data();
      std::byte* pack = sched->scratch[1].data();
      std::byte* unpack = sched->scratch[2].data();

      // Phase 1: local rotation tmp[j] = send[(rank + j) mod p].
      for (int j = 0; j < p; ++j) {
        lo.local_copy(tmp + static_cast<std::size_t>(j) * bytes,
                      bptr(sendbuf,
                           static_cast<std::size_t>(pmod(rank + j, p)) *
                               bytes),
                      bytes);
      }
      sched->self_addr = comm.expose(pack);
      lo.addr_allgather();

      for (int bit = 1; bit < p; bit <<= 1) {
        const int to = pmod(rank + bit, p);   // rank that reads our pack
        const int from = pmod(rank - bit, p); // rank whose pack we read
        std::size_t count = 0;
        for (int j = bit; j < p; ++j) {
          if ((j & bit) != 0) {
            lo.local_copy(pack + count * bytes,
                          tmp + static_cast<std::size_t>(j) * bytes, bytes);
            ++count;
          }
        }
        // Handshake: tell our reader the pack is ready; wait for our
        // source.
        lo.signal(to);
        lo.wait_signal(from);
        lo.cma_read(from, from, 0, unpack, count * bytes);
        std::size_t idx = 0;
        for (int j = bit; j < p; ++j) {
          if ((j & bit) != 0) {
            lo.local_copy(tmp + static_cast<std::size_t>(j) * bytes,
                          unpack + idx * bytes, bytes);
            ++idx;
          }
        }
        // FIN: our source may repack once we are done with its pack.
        lo.signal(from);
        lo.wait_signal(to);
      }

      // Phase 3: inverse rotation recv[(rank - j) mod p] = tmp[j].
      for (int j = 0; j < p; ++j) {
        lo.local_copy(bptr(recvbuf,
                           static_cast<std::size_t>(pmod(rank - j, p)) *
                               bytes),
                      tmp + static_cast<std::size_t>(j) * bytes, bytes);
      }
      lo.barrier();
      break;
    }
    case coll::AlltoallAlgo::kAuto:
      throw InternalError("compile_alltoall: unresolved kAuto");
  }
  return sched;
}

} // namespace kacc::nbc
