#include "coll/allgather.h"

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

void allgather(Comm& comm, const void* sendbuf, void* recvbuf,
               std::size_t bytes, AllgatherAlgo algo,
               const CollOptions& opts) {
  const int p = comm.size();
  validate_options(opts);
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr, "allgather: recvbuf required");
  KACC_CHECK_MSG(sendbuf != nullptr || opts.in_place,
                 "allgather: sendbuf required");

  CollOptions eff = opts;
  if (algo == AllgatherAlgo::kAuto) {
    const Tuner::Choice c = Tuner().allgather(comm.arch(), p, bytes);
    algo = c.allgather;
    if (eff.ring_stride <= 0) {
      eff.ring_stride = c.ring_stride;
    }
  }
  if (algo == AllgatherAlgo::kRingNeighbor) {
    validate_ring_stride(p, eff.ring_stride);
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAllgather,
                 static_cast<std::int64_t>(bytes), -1,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(), static_cast<std::int64_t>(bytes), -1,
                      to_string(algo).c_str());

  auto sched =
      nbc::compile_allgather(comm, sendbuf, recvbuf, bytes, algo, eff, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
