#include "coll/allgather.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll/tuner.h"
#include "common/buffer.h"
#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {
namespace {

std::byte* block(void* recvbuf, int idx, std::size_t bytes) {
  return static_cast<std::byte*>(recvbuf) +
         static_cast<std::size_t>(idx) * bytes;
}

void place_own_block(Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bytes, bool in_place) {
  if (!in_place) {
    comm.local_copy(block(recvbuf, comm.rank(), bytes), sendbuf, bytes);
  }
}

/// Exchanges everyone's recvbuf address after the own-block copy, so every
/// rank may read any already-valid block of any peer.
std::vector<std::uint64_t> exchange_recv_addrs(Comm& comm, void* recvbuf) {
  std::uint64_t my_addr = comm.expose(recvbuf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(comm.size()));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));
  return addrs;
}

/// Ring-Source (§V-A2): step i reads block (rank - i) directly from its
/// original source. Every source block is valid after the address
/// exchange, so no per-step synchronization is needed, and the rotation
/// keeps sources distinct — contention free.
void allgather_ring_source_read(Comm& comm, const void* sendbuf,
                                void* recvbuf, std::size_t bytes,
                                bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  place_own_block(comm, sendbuf, recvbuf, bytes, in_place);
  const std::vector<std::uint64_t> addrs = exchange_recv_addrs(comm, recvbuf);
  for (int step = 1; step < p; ++step) {
    const int src = pmod(rank - step, p);
    comm.cma_read(src,
                  addrs[static_cast<std::size_t>(src)] +
                      static_cast<std::uint64_t>(src) * bytes,
                  block(recvbuf, src, bytes), bytes);
  }
  comm.barrier();
}

/// Write flavor: step i writes our block into (rank + i)'s recvbuf.
void allgather_ring_source_write(Comm& comm, const void* sendbuf,
                                 void* recvbuf, std::size_t bytes,
                                 bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  place_own_block(comm, sendbuf, recvbuf, bytes, in_place);
  const std::vector<std::uint64_t> addrs = exchange_recv_addrs(comm, recvbuf);
  for (int step = 1; step < p; ++step) {
    const int dst = pmod(rank + step, p);
    comm.cma_write(dst,
                   addrs[static_cast<std::size_t>(dst)] +
                       static_cast<std::uint64_t>(rank) * bytes,
                   block(recvbuf, rank, bytes), bytes);
  }
  comm.barrier();
}

/// Ring-Neighbor-j (§V-A1): every step reads one block from the fixed
/// neighbor (rank - j); the block travels around the ring. Correct only
/// when gcd(p, j) == 1. Per-step notifications tell the downstream
/// neighbor that our latest block is ready.
void allgather_ring_neighbor(Comm& comm, const void* sendbuf, void* recvbuf,
                             std::size_t bytes, int j, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  KACC_CHECK_MSG(gcd_u64(static_cast<std::uint64_t>(p),
                         static_cast<std::uint64_t>(pmod(j, p))) == 1,
                 "ring-neighbor allgather requires gcd(p, j) == 1");
  place_own_block(comm, sendbuf, recvbuf, bytes, in_place);
  const std::vector<std::uint64_t> addrs = exchange_recv_addrs(comm, recvbuf);

  const int up = pmod(rank - j, p);   // we read from up
  const int down = pmod(rank + j, p); // down reads from us
  for (int step = 1; step < p; ++step) {
    const int blk = pmod(rank - step * j, p);
    if (step >= 2) {
      // Wait for the neighbor to have finished step-1 (its copy of blk).
      comm.wait_signal(up);
    }
    comm.cma_read(up,
                  addrs[static_cast<std::size_t>(up)] +
                      static_cast<std::uint64_t>(blk) * bytes,
                  block(recvbuf, blk, bytes), bytes);
    if (step <= p - 2) {
      comm.signal(down);
    }
  }
  comm.barrier();
}

/// Recursive doubling (§V-A3): lg p pairwise exchanges of doubling extent.
/// Non-power-of-two counts get a fold-in pre-step and a replication
/// post-step around the power-of-two core.
void allgather_recursive_doubling(Comm& comm, const void* sendbuf,
                                  void* recvbuf, std::size_t bytes,
                                  bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  place_own_block(comm, sendbuf, recvbuf, bytes, in_place);
  const std::vector<std::uint64_t> addrs = exchange_recv_addrs(comm, recvbuf);

  int r = 1;
  while (r * 2 <= p) {
    r *= 2; // largest power of two <= p
  }
  const int extra = p - r;

  // Pre-step: ranks >= r park their block at partner (rank - r), which
  // then represents both.
  if (rank >= r) {
    comm.signal(rank - r);
  } else if (rank + r < p) {
    comm.wait_signal(rank + r);
    const int src = rank + r;
    comm.cma_read(src,
                  addrs[static_cast<std::size_t>(src)] +
                      static_cast<std::uint64_t>(src) * bytes,
                  block(recvbuf, src, bytes), bytes);
  }

  if (rank < r) {
    // Core butterfly among the low r ranks. After step k each rank holds
    // the blocks of its 2^k-aligned group, plus the group's shadow blocks
    // (idx + r) where they exist.
    for (int dist = 1; dist < r; dist *= 2) {
      const int partner = rank ^ dist;
      // Group base of the partner at this level: partner with the low
      // log2(dist) bits cleared.
      const int base = partner & ~(dist - 1);
      comm.signal(partner);
      comm.wait_signal(partner);
      // Primary region: partner's group blocks [base, base + dist).
      comm.cma_read(partner,
                    addrs[static_cast<std::size_t>(partner)] +
                        static_cast<std::uint64_t>(base) * bytes,
                    block(recvbuf, base, bytes),
                    static_cast<std::size_t>(dist) * bytes);
      // Shadow region: the folded blocks [base + r, min(base + dist, extra) + r).
      const int shadow_lo = base;
      const int shadow_hi = std::min(base + dist, extra);
      if (shadow_hi > shadow_lo) {
        comm.cma_read(partner,
                      addrs[static_cast<std::size_t>(partner)] +
                          static_cast<std::uint64_t>(shadow_lo + r) * bytes,
                      block(recvbuf, shadow_lo + r, bytes),
                      static_cast<std::size_t>(shadow_hi - shadow_lo) * bytes);
      }
      // FIN so the partner may proceed to the next level knowing we no
      // longer read this level's state.
      comm.signal(partner);
      comm.wait_signal(partner);
    }
  }

  // Post-step: folded ranks pull the complete result from their partner.
  if (rank < r && rank + r < p) {
    comm.signal(rank + r);
  } else if (rank >= r) {
    const int src = rank - r;
    comm.wait_signal(src);
    // Read everything except our own block (already in place).
    // Two contiguous regions around our block index.
    if (rank > 0) {
      comm.cma_read(src, addrs[static_cast<std::size_t>(src)],
                    block(recvbuf, 0, bytes),
                    static_cast<std::size_t>(rank) * bytes);
    }
    if (rank + 1 < p) {
      comm.cma_read(src,
                    addrs[static_cast<std::size_t>(src)] +
                        static_cast<std::uint64_t>(rank + 1) * bytes,
                    block(recvbuf, rank + 1, bytes),
                    static_cast<std::size_t>(p - rank - 1) * bytes);
    }
  }
  comm.barrier();
}

/// Bruck allgather (§V-A4): gather into a rotated staging buffer with
/// doubling reads from (rank + 2^k), then shift into place.
void allgather_bruck(Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bytes, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();

  AlignedBuffer tmp(static_cast<std::size_t>(p) * bytes);
  const void* own = in_place
                        ? static_cast<const void*>(block(recvbuf, rank, bytes))
                        : sendbuf;
  comm.local_copy(tmp.data(), own, bytes);

  std::uint64_t tmp_addr = comm.expose(tmp.data());
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&tmp_addr, addrs.data(), sizeof(tmp_addr));

  int have = 1;
  while (have < p) {
    const int take = std::min(have, p - have);
    const int from = pmod(rank + have, p); // we read from
    const int to = pmod(rank - have, p);   // reads from us
    comm.signal(to);
    comm.wait_signal(from);
    comm.cma_read(from, addrs[static_cast<std::size_t>(from)],
                  tmp.data() + static_cast<std::size_t>(have) * bytes,
                  static_cast<std::size_t>(take) * bytes);
    comm.signal(from);
    comm.wait_signal(to);
    have += take;
  }

  // tmp[j] holds block (rank + j) mod p; shift down by rank blocks.
  for (int j = 0; j < p; ++j) {
    comm.local_copy(block(recvbuf, pmod(rank + j, p), bytes),
                    tmp.data() + static_cast<std::size_t>(j) * bytes, bytes);
  }
  comm.barrier();
}

} // namespace

void allgather(Comm& comm, const void* sendbuf, void* recvbuf,
               std::size_t bytes, AllgatherAlgo algo,
               const CollOptions& opts) {
  const int p = comm.size();
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr, "allgather: recvbuf required");
  KACC_CHECK_MSG(sendbuf != nullptr || opts.in_place,
                 "allgather: sendbuf required");

  CollOptions eff = opts;
  if (algo == AllgatherAlgo::kAuto) {
    const Tuner::Choice c = Tuner().allgather(comm.arch(), p, bytes);
    algo = c.allgather;
    if (eff.ring_stride <= 0) {
      eff.ring_stride = c.ring_stride;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAllgather,
                 static_cast<std::int64_t>(bytes), -1,
                 to_string(algo).c_str());

  if (p == 1) {
    if (!eff.in_place) {
      comm.local_copy(recvbuf, sendbuf, bytes);
    }
    return;
  }

  switch (algo) {
    case AllgatherAlgo::kRingSourceRead:
      allgather_ring_source_read(comm, sendbuf, recvbuf, bytes, eff.in_place);
      break;
    case AllgatherAlgo::kRingSourceWrite:
      allgather_ring_source_write(comm, sendbuf, recvbuf, bytes,
                                  eff.in_place);
      break;
    case AllgatherAlgo::kRingNeighbor:
      allgather_ring_neighbor(comm, sendbuf, recvbuf, bytes,
                              eff.ring_stride > 0 ? eff.ring_stride : 1,
                              eff.in_place);
      break;
    case AllgatherAlgo::kRecursiveDoubling:
      allgather_recursive_doubling(comm, sendbuf, recvbuf, bytes,
                                   eff.in_place);
      break;
    case AllgatherAlgo::kBruck:
      allgather_bruck(comm, sendbuf, recvbuf, bytes, eff.in_place);
      break;
    case AllgatherAlgo::kAuto:
      throw InternalError("allgather: tuner returned kAuto");
  }
}

} // namespace kacc::coll
