// All-to-all non-personalized collective: MPI_Allgather semantics.
//
// Every rank contributes one `bytes` block from `sendbuf`; everyone ends
// with all p blocks rank-major in `recvbuf`.
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Allgathers `bytes` per rank. With opts.in_place each rank's block is
/// assumed already at recvbuf[rank]. opts.ring_stride selects j for
/// kRingNeighbor (gcd(p, j) must be 1).
void allgather(Comm& comm, const void* sendbuf, void* recvbuf,
               std::size_t bytes, AllgatherAlgo algo = AllgatherAlgo::kAuto,
               const CollOptions& opts = {});

} // namespace kacc::coll
