#include "coll/reduce.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "coll/bcast.h"
#include "coll/gather.h"
#include "coll/tuner.h"
#include "common/buffer.h"
#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

std::string to_string(ReduceAlgo a) {
  switch (a) {
    case ReduceAlgo::kAuto: return "auto";
    case ReduceAlgo::kGatherCombine: return "gather-combine";
    case ReduceAlgo::kBinomialRead: return "binomial-read";
    case ReduceAlgo::kReduceScatterGather: return "reduce-scatter-gather";
  }
  return "?";
}

std::string to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kReduceBcast: return "reduce-bcast";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
  }
  return "?";
}

void combine(ReduceOp op, double* acc, const double* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] += in[i];
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::max(acc[i], in[i]);
      }
      break;
  }
}

namespace {

constexpr std::size_t kElem = sizeof(double);

/// Balanced chunk boundaries for the reduce-scatter phases.
struct Chunking {
  std::size_t base;
  std::size_t rem;

  explicit Chunking(std::size_t count, int p)
      : base(count / static_cast<std::size_t>(p)),
        rem(count % static_cast<std::size_t>(p)) {}

  [[nodiscard]] std::size_t count_of(int q) const {
    return base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
  }
  [[nodiscard]] std::size_t offset_of(int q) const {
    const auto uq = static_cast<std::size_t>(q);
    return uq * base + std::min(uq, rem);
  }
};

/// Exchanges the address of each rank's accumulator buffer.
std::vector<std::uint64_t> exchange_addrs(Comm& comm, const double* buf) {
  std::uint64_t mine = comm.expose(buf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(comm.size()));
  comm.ctrl_allgather(&mine, addrs.data(), sizeof(mine));
  return addrs;
}

void charge_and_combine(Comm& comm, ReduceOp op, double* acc,
                        const double* in, std::size_t count) {
  combine(op, acc, in, count);
  comm.compute_charge(count * kElem);
}

/// Tuned gather of full vectors followed by a root-side combine — the
/// write-based, contention-aware design (the gather phase reuses the
/// throttled writes of §IV-B).
void reduce_gather_combine(Comm& comm, const double* send, double* recv,
                           std::size_t count, ReduceOp op, int root) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  AlignedBuffer staging(comm.rank() == root
                            ? bytes * static_cast<std::size_t>(p)
                            : 0);
  gather(comm, send, staging.empty() ? nullptr : staging.data(), bytes, root,
         GatherAlgo::kAuto);
  if (comm.rank() == root) {
    const auto* blocks = reinterpret_cast<const double*>(staging.data());
    comm.local_copy(recv, blocks, bytes);
    for (int q = 1; q < p; ++q) {
      charge_and_combine(comm, op, recv,
                         blocks + static_cast<std::size_t>(q) * count, count);
    }
  }
}

/// Binomial read tree: parents pull each child's accumulator (distinct
/// sources per round — no page-lock contention) and combine.
void reduce_binomial_read(Comm& comm, const double* send, double* recv,
                          std::size_t count, ReduceOp op, int root) {
  const int p = comm.size();
  const int vrank = pmod(comm.rank() - root, p);
  auto actual = [&](int v) { return pmod(v + root, p); };
  const std::size_t bytes = count * kElem;

  AlignedBuffer acc_buf(bytes);
  auto* acc = reinterpret_cast<double*>(acc_buf.data());
  comm.local_copy(acc, send, bytes);
  AlignedBuffer tmp_buf(bytes);
  auto* tmp = reinterpret_cast<double*>(tmp_buf.data());

  const std::vector<std::uint64_t> addrs = exchange_addrs(comm, acc);

  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & mask) != 0) {
      // Contribute to the parent, then hold the buffer until it is read.
      const int parent = actual(vrank - mask);
      comm.signal(parent);      // acc ready
      comm.wait_signal(parent); // parent finished reading
      break;
    }
    if (vrank + mask < p) {
      const int child = actual(vrank + mask);
      comm.wait_signal(child);
      comm.cma_read(child, addrs[static_cast<std::size_t>(child)], tmp,
                    bytes);
      charge_and_combine(comm, op, acc, tmp, count);
      comm.signal(child); // child may release its buffer
    }
  }
  if (comm.rank() == root) {
    comm.local_copy(recv, acc, bytes);
  }
  // acc buffers are function-local: nobody may still be reading them.
  comm.barrier();
}

/// Ring reduce-scatter: after p-1 chained steps, rank r holds the fully
/// reduced chunk (r+1) mod p. Pairwise-disjoint reads keep it contention
/// free, like the Alltoall pairwise exchange.
void ring_reduce_scatter(Comm& comm, double* acc, ReduceOp op,
                         const Chunking& ch,
                         const std::vector<std::uint64_t>& addrs,
                         AlignedBuffer& tmp_buf) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int up = pmod(rank - 1, p);
  const int down = pmod(rank + 1, p);
  auto* tmp = reinterpret_cast<double*>(tmp_buf.data());
  for (int step = 1; step < p; ++step) {
    const int c = pmod(rank - step, p);
    if (step >= 2) {
      comm.wait_signal(up); // up finished accumulating chunk c last step
    }
    comm.cma_read(up,
                  addrs[static_cast<std::size_t>(up)] +
                      ch.offset_of(c) * kElem,
                  tmp, ch.count_of(c) * kElem);
    charge_and_combine(comm, op, acc + ch.offset_of(c), tmp, ch.count_of(c));
    if (step <= p - 2) {
      comm.signal(down);
    }
  }
}

/// Owner of chunk q after the ring reduce-scatter.
int chunk_holder(int chunk, int p) { return pmod(chunk - 1, p); }

/// Reduce-scatter + sequential chunk gather at the root.
void reduce_rsg(Comm& comm, const double* send, double* recv,
                std::size_t count, ReduceOp op, int root) {
  const int p = comm.size();
  const std::size_t bytes = count * kElem;
  const Chunking ch(count, p);

  AlignedBuffer acc_buf(bytes);
  auto* acc = reinterpret_cast<double*>(acc_buf.data());
  comm.local_copy(acc, send, bytes);
  AlignedBuffer tmp_buf((ch.base + 1) * kElem);
  const std::vector<std::uint64_t> addrs = exchange_addrs(comm, acc);

  ring_reduce_scatter(comm, acc, op, ch, addrs, tmp_buf);
  comm.barrier(); // every chunk fully reduced

  if (comm.rank() == root) {
    for (int c = 0; c < p; ++c) {
      const int holder = chunk_holder(c, p);
      if (ch.count_of(c) == 0) {
        continue;
      }
      if (holder == root) {
        comm.local_copy(recv + ch.offset_of(c), acc + ch.offset_of(c),
                        ch.count_of(c) * kElem);
      } else {
        comm.cma_read(holder,
                      addrs[static_cast<std::size_t>(holder)] +
                          ch.offset_of(c) * kElem,
                      recv + ch.offset_of(c), ch.count_of(c) * kElem);
      }
    }
  }
  comm.barrier(); // holders keep acc alive until the root has read
}

/// Recursive-doubling allreduce with fold-in/out for non-powers-of-two.
void allreduce_rd(Comm& comm, const double* send, double* recv,
                  std::size_t count, ReduceOp op) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t bytes = count * kElem;

  AlignedBuffer acc_buf(bytes);
  auto* acc = reinterpret_cast<double*>(acc_buf.data());
  comm.local_copy(acc, send, bytes);
  AlignedBuffer tmp_buf(bytes);
  auto* tmp = reinterpret_cast<double*>(tmp_buf.data());
  const std::vector<std::uint64_t> addrs = exchange_addrs(comm, acc);

  int r = 1;
  while (r * 2 <= p) {
    r *= 2;
  }

  // Fold-in: ranks >= r contribute to (rank - r).
  if (rank >= r) {
    comm.signal(rank - r);
    comm.wait_signal(rank - r);
  } else if (rank + r < p) {
    const int src = rank + r;
    comm.wait_signal(src);
    comm.cma_read(src, addrs[static_cast<std::size_t>(src)], tmp, bytes);
    charge_and_combine(comm, op, acc, tmp, count);
    comm.signal(src);
  }

  if (rank < r) {
    for (int mask = 1; mask < r; mask <<= 1) {
      const int partner = rank ^ mask;
      // Both sides read the peer's current accumulator, then combine only
      // after both reads completed (read-ready / read-done handshake).
      comm.signal(partner);
      comm.wait_signal(partner);
      comm.cma_read(partner, addrs[static_cast<std::size_t>(partner)], tmp,
                    bytes);
      comm.signal(partner);
      comm.wait_signal(partner);
      charge_and_combine(comm, op, acc, tmp, count);
    }
  }

  // Fold-out: ranks >= r pull the final vector.
  if (rank < r && rank + r < p) {
    comm.signal(rank + r);
  } else if (rank >= r) {
    const int src = rank - r;
    comm.wait_signal(src);
    comm.cma_read(src, addrs[static_cast<std::size_t>(src)], acc, bytes);
  }
  comm.local_copy(recv, acc, bytes);
  comm.barrier();
}

/// Rabenseifner: ring reduce-scatter, then every rank pulls each reduced
/// chunk straight from its holder (ring-source allgather — contention
/// free).
void allreduce_rabenseifner(Comm& comm, const double* send, double* recv,
                            std::size_t count, ReduceOp op) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t bytes = count * kElem;
  const Chunking ch(count, p);

  AlignedBuffer acc_buf(bytes);
  auto* acc = reinterpret_cast<double*>(acc_buf.data());
  comm.local_copy(acc, send, bytes);
  AlignedBuffer tmp_buf((ch.base + 1) * kElem);
  const std::vector<std::uint64_t> addrs = exchange_addrs(comm, acc);

  ring_reduce_scatter(comm, acc, op, ch, addrs, tmp_buf);
  comm.barrier();

  // Allgather phase: rotate over distinct holders.
  const int own_chunk = pmod(rank + 1, p);
  if (ch.count_of(own_chunk) > 0) {
    comm.local_copy(recv + ch.offset_of(own_chunk),
                    acc + ch.offset_of(own_chunk),
                    ch.count_of(own_chunk) * kElem);
  }
  for (int step = 1; step < p; ++step) {
    const int holder = pmod(rank - step, p);
    const int c = pmod(holder + 1, p);
    if (ch.count_of(c) == 0) {
      continue;
    }
    comm.cma_read(holder,
                  addrs[static_cast<std::size_t>(holder)] +
                      ch.offset_of(c) * kElem,
                  recv + ch.offset_of(c), ch.count_of(c) * kElem);
  }
  comm.barrier();
}

} // namespace

void reduce(Comm& comm, const double* send, double* recv, std::size_t count,
            ReduceOp op, int root, ReduceAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "reduce: root out of range");
  if (count == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(send != nullptr, "reduce: send required");
  KACC_CHECK_MSG(comm.rank() != root || recv != nullptr,
                 "reduce: root needs recv");
  (void)opts;

  if (algo == ReduceAlgo::kAuto) {
    algo = Tuner().reduce(comm.arch(), p, count * kElem).reduce;
  }
  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kReduce,
                 static_cast<std::int64_t>(count * kElem), root,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(),
                      static_cast<std::int64_t>(count * kElem), root,
                      to_string(algo).c_str());
  if (p == 1) {
    comm.local_copy(recv, send, count * kElem);
    return;
  }
  switch (algo) {
    case ReduceAlgo::kGatherCombine:
      reduce_gather_combine(comm, send, recv, count, op, root);
      break;
    case ReduceAlgo::kBinomialRead:
      reduce_binomial_read(comm, send, recv, count, op, root);
      break;
    case ReduceAlgo::kReduceScatterGather:
      reduce_rsg(comm, send, recv, count, op, root);
      break;
    case ReduceAlgo::kAuto:
      throw InternalError("reduce: tuner returned kAuto");
  }
}

void allreduce(Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op, AllreduceAlgo algo,
               const CollOptions& opts) {
  const int p = comm.size();
  if (count == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(send != nullptr && recv != nullptr,
                 "allreduce: send and recv required");
  (void)opts;

  if (algo == AllreduceAlgo::kAuto) {
    algo = Tuner().allreduce(comm.arch(), p, count * kElem).allreduce;
  }
  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAllreduce,
                 static_cast<std::int64_t>(count * kElem), -1,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(),
                      static_cast<std::int64_t>(count * kElem), -1,
                      to_string(algo).c_str());
  if (p == 1) {
    comm.local_copy(recv, send, count * kElem);
    return;
  }
  switch (algo) {
    case AllreduceAlgo::kReduceBcast:
      reduce(comm, send, recv, count, op, 0, ReduceAlgo::kAuto);
      bcast(comm, recv, count * kElem, 0, BcastAlgo::kAuto);
      break;
    case AllreduceAlgo::kRecursiveDoubling:
      allreduce_rd(comm, send, recv, count, op);
      break;
    case AllreduceAlgo::kRabenseifner:
      allreduce_rabenseifner(comm, send, recv, count, op);
      break;
    case AllreduceAlgo::kAuto:
      throw InternalError("allreduce: tuner returned kAuto");
  }
}

} // namespace kacc::coll
