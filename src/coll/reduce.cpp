#include "coll/reduce.h"

#include <algorithm>
#include <cstdint>

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

std::string to_string(ReduceAlgo a) {
  switch (a) {
    case ReduceAlgo::kAuto: return "auto";
    case ReduceAlgo::kGatherCombine: return "gather-combine";
    case ReduceAlgo::kBinomialRead: return "binomial-read";
    case ReduceAlgo::kReduceScatterGather: return "reduce-scatter-gather";
    case ReduceAlgo::kHier: return "hier";
  }
  return "?";
}

std::string to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kReduceBcast: return "reduce-bcast";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
    case AllreduceAlgo::kHier: return "hier";
  }
  return "?";
}

void combine(ReduceOp op, double* acc, const double* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] += in[i];
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::max(acc[i], in[i]);
      }
      break;
  }
}

void reduce(Comm& comm, const double* send, double* recv, std::size_t count,
            ReduceOp op, int root, ReduceAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "reduce: root out of range");
  if (count == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(send != nullptr, "reduce: send required");
  KACC_CHECK_MSG(comm.rank() != root || recv != nullptr,
                 "reduce: root needs recv");
  (void)opts;

  if (algo == ReduceAlgo::kAuto) {
    algo = Tuner().reduce(comm.arch(), p, count * sizeof(double)).reduce;
  }
  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kReduce,
                 static_cast<std::int64_t>(count * sizeof(double)), root,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(),
                      static_cast<std::int64_t>(count * sizeof(double)), root,
                      to_string(algo).c_str());
  auto sched =
      nbc::compile_reduce(comm, send, recv, count, op, root, algo, opts, {});
  nbc::drain(comm, *sched);
}

void allreduce(Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op, AllreduceAlgo algo,
               const CollOptions& opts) {
  const int p = comm.size();
  if (count == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(send != nullptr && recv != nullptr,
                 "allreduce: send and recv required");
  (void)opts;

  if (algo == AllreduceAlgo::kAuto) {
    algo = Tuner().allreduce(comm.arch(), p, count * sizeof(double)).allreduce;
  }
  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAllreduce,
                 static_cast<std::int64_t>(count * sizeof(double)), -1,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(),
                      static_cast<std::int64_t>(count * sizeof(double)), -1,
                      to_string(algo).c_str());
  auto sched =
      nbc::compile_allreduce(comm, send, recv, count, op, algo, opts, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
