#include "coll/alltoall.h"

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

void alltoall(Comm& comm, const void* sendbuf, void* recvbuf,
              std::size_t bytes, AlltoallAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  validate_options(opts);
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr, "alltoall: recvbuf required");
  KACC_CHECK_MSG(sendbuf != nullptr || opts.in_place,
                 "alltoall: sendbuf required");

  if (algo == AlltoallAlgo::kAuto) {
    algo = Tuner().alltoall(comm.arch(), p, bytes).alltoall;
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAlltoall,
                 static_cast<std::int64_t>(bytes), -1,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(), static_cast<std::int64_t>(bytes), -1,
                      to_string(algo).c_str());

  auto sched =
      nbc::compile_alltoall(comm, sendbuf, recvbuf, bytes, algo, opts, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
