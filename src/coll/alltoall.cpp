#include "coll/alltoall.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "coll/tuner.h"
#include "common/buffer.h"
#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {
namespace {

/// Peer of `rank` at pairwise step i: XOR schedule when p is a power of
/// two (symmetric pairs), modular otherwise. Both guarantee each process
/// is the source of exactly one reader per step — no lock contention.
int pairwise_read_peer(int rank, int step, int p) {
  if (is_pow2(static_cast<std::uint64_t>(p))) {
    return rank ^ step;
  }
  return pmod(rank - step, p);
}

void copy_own_block(Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bytes, bool in_place) {
  if (!in_place) {
    comm.local_copy(static_cast<std::byte*>(recvbuf) +
                        static_cast<std::size_t>(comm.rank()) * bytes,
                    static_cast<const std::byte*>(sendbuf) +
                        static_cast<std::size_t>(comm.rank()) * bytes,
                    bytes);
  }
}

/// Native CMA pairwise: one upfront address allgather, then p-1
/// contention-free reads. This is the paper's CMA-coll design: no RTS/CTS
/// control messages per transfer.
void alltoall_pairwise(Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t bytes, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  copy_own_block(comm, sendbuf, recvbuf, bytes, in_place);

  std::uint64_t my_addr = comm.expose(sendbuf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));

  for (int step = 1; step < p; ++step) {
    const int peer = pairwise_read_peer(rank, step, p);
    if (peer == rank) {
      continue; // XOR schedule never hits this; modular cannot either
    }
    comm.cma_read(peer,
                  addrs[static_cast<std::size_t>(peer)] +
                      static_cast<std::uint64_t>(rank) * bytes,
                  static_cast<std::byte*>(recvbuf) +
                      static_cast<std::size_t>(peer) * bytes,
                  bytes);
  }
  // Peers keep reading from our sendbuf until their last step; do not
  // return (and let the caller reuse buffers) before everyone is done.
  comm.barrier();
}

/// Pairwise over point-to-point CMA: same schedule, but each transfer pays
/// the RTS ("my buffer is ready") / FIN ("done reading") handshake that a
/// pt2pt rendezvous protocol needs.
void alltoall_pairwise_pt2pt(Comm& comm, const void* sendbuf, void* recvbuf,
                             std::size_t bytes, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  copy_own_block(comm, sendbuf, recvbuf, bytes, in_place);

  std::uint64_t my_addr = comm.expose(sendbuf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));

  for (int step = 1; step < p; ++step) {
    const int read_peer = pairwise_read_peer(rank, step, p);
    // The rank that reads *from us* this step.
    const int reader = is_pow2(static_cast<std::uint64_t>(p))
                           ? (rank ^ step)
                           : pmod(rank + step, p);
    if (read_peer == rank) {
      continue;
    }
    comm.signal(reader);          // RTS: my block for you is ready
    comm.wait_signal(read_peer);  // their RTS
    comm.cma_read(read_peer,
                  addrs[static_cast<std::size_t>(read_peer)] +
                      static_cast<std::uint64_t>(rank) * bytes,
                  static_cast<std::byte*>(recvbuf) +
                      static_cast<std::size_t>(read_peer) * bytes,
                  bytes);
    comm.signal(read_peer);   // FIN: done with their buffer
    comm.wait_signal(reader); // their FIN before the next step reuses state
  }
  comm.barrier();
}

/// Pairwise over the two-copy shared-memory pipe (the SHMEM baseline).
void alltoall_pairwise_shmem(Comm& comm, const void* sendbuf, void* recvbuf,
                             std::size_t bytes, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  copy_own_block(comm, sendbuf, recvbuf, bytes, in_place);

  for (int step = 1; step < p; ++step) {
    const int dst = pmod(rank + step, p);
    const int src = pmod(rank - step, p);
    // Deadlock avoidance on the bounded pipes: the minimum rank of each
    // send cycle (cycles of stride `step` are the residues mod gcd(p,
    // step)) receives first, breaking the circular wait.
    const int cycle_min =
        rank % static_cast<int>(gcd_u64(static_cast<std::uint64_t>(p),
                                        static_cast<std::uint64_t>(step)));
    const bool recv_first = rank == cycle_min;
    auto do_send = [&] {
      comm.shm_send(dst,
                    static_cast<const std::byte*>(sendbuf) +
                        static_cast<std::size_t>(dst) * bytes,
                    bytes);
    };
    auto do_recv = [&] {
      comm.shm_recv(src,
                    static_cast<std::byte*>(recvbuf) +
                        static_cast<std::size_t>(src) * bytes,
                    bytes);
    };
    if (recv_first) {
      do_recv();
      do_send();
    } else {
      do_send();
      do_recv();
    }
  }
}

/// Bruck's algorithm: ceil(log2 p) steps, each moving the blocks whose
/// index has the step bit set. Pays pack/unpack copies per step.
void alltoall_bruck(Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bytes, bool in_place) {
  const int p = comm.size();
  const int rank = comm.rank();
  (void)in_place; // Bruck always stages through tmp; in-place is free

  // Phase 1: local rotation tmp[j] = send[(rank + j) mod p].
  AlignedBuffer tmp(static_cast<std::size_t>(p) * bytes);
  AlignedBuffer pack(static_cast<std::size_t>(p) * bytes);
  AlignedBuffer unpack(static_cast<std::size_t>(p) * bytes);
  const auto* send_bytes = static_cast<const std::byte*>(sendbuf);
  for (int j = 0; j < p; ++j) {
    comm.local_copy(tmp.data() + static_cast<std::size_t>(j) * bytes,
                    send_bytes +
                        static_cast<std::size_t>(pmod(rank + j, p)) * bytes,
                    bytes);
  }

  std::uint64_t pack_addr = comm.expose(pack.data());
  std::vector<std::uint64_t> pack_addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&pack_addr, pack_addrs.data(), sizeof(pack_addr));

  for (int bit = 1; bit < p; bit <<= 1) {
    const int to = pmod(rank + bit, p);   // rank that reads our pack
    const int from = pmod(rank - bit, p); // rank whose pack we read
    // Pack blocks with this bit set.
    std::size_t count = 0;
    for (int j = bit; j < p; ++j) {
      if ((j & bit) != 0) {
        comm.local_copy(pack.data() + count * bytes,
                        tmp.data() + static_cast<std::size_t>(j) * bytes,
                        bytes);
        ++count;
      }
    }
    // Handshake: tell our reader the pack is ready; wait for our source.
    comm.signal(to);
    comm.wait_signal(from);
    comm.cma_read(from, pack_addrs[static_cast<std::size_t>(from)],
                  unpack.data(), count * bytes);
    // Unpack into the same block slots.
    std::size_t idx = 0;
    for (int j = bit; j < p; ++j) {
      if ((j & bit) != 0) {
        comm.local_copy(tmp.data() + static_cast<std::size_t>(j) * bytes,
                        unpack.data() + idx * bytes, bytes);
        ++idx;
      }
    }
    // FIN: our source may repack once we are done with its pack buffer.
    comm.signal(from);
    comm.wait_signal(to);
  }

  // Phase 3: inverse rotation recv[(rank - j) mod p] = tmp[j].
  auto* recv_bytes = static_cast<std::byte*>(recvbuf);
  for (int j = 0; j < p; ++j) {
    comm.local_copy(recv_bytes +
                        static_cast<std::size_t>(pmod(rank - j, p)) * bytes,
                    tmp.data() + static_cast<std::size_t>(j) * bytes, bytes);
  }
  comm.barrier();
}

} // namespace

void alltoall(Comm& comm, const void* sendbuf, void* recvbuf,
              std::size_t bytes, AlltoallAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr, "alltoall: recvbuf required");
  KACC_CHECK_MSG(sendbuf != nullptr || opts.in_place,
                 "alltoall: sendbuf required");

  if (algo == AlltoallAlgo::kAuto) {
    algo = Tuner().alltoall(comm.arch(), p, bytes).alltoall;
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kAlltoall,
                 static_cast<std::int64_t>(bytes), -1,
                 to_string(algo).c_str());

  if (p == 1) {
    if (!opts.in_place) {
      comm.local_copy(recvbuf, sendbuf, bytes);
    }
    return;
  }

  switch (algo) {
    case AlltoallAlgo::kPairwise:
      alltoall_pairwise(comm, sendbuf, recvbuf, bytes, opts.in_place);
      break;
    case AlltoallAlgo::kPairwisePt2pt:
      alltoall_pairwise_pt2pt(comm, sendbuf, recvbuf, bytes, opts.in_place);
      break;
    case AlltoallAlgo::kPairwiseShmem:
      alltoall_pairwise_shmem(comm, sendbuf, recvbuf, bytes, opts.in_place);
      break;
    case AlltoallAlgo::kBruck:
      alltoall_bruck(comm, sendbuf, recvbuf, bytes, opts.in_place);
      break;
    case AlltoallAlgo::kAuto:
      throw InternalError("alltoall: tuner returned kAuto");
  }
}

} // namespace kacc::coll
