// All-to-one personalized collective: MPI_Gather semantics.
//
// Every rank contributes `bytes` from `sendbuf`; the root ends with all p
// blocks rank-major in `recvbuf`.
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Gathers `bytes` per rank to root. At non-roots `recvbuf` is ignored.
/// With opts.in_place the root's own block is assumed already placed.
void gather(Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
            int root, GatherAlgo algo = GatherAlgo::kAuto,
            const CollOptions& opts = {});

} // namespace kacc::coll
