// Model-driven algorithm selection: for a given architecture, rank count
// and message size, evaluate the analytic cost of every candidate
// algorithm (and throttle factor) and pick the cheapest. This implements
// the paper's "selects the appropriate CMA algorithm for a given collective
// based on the architecture and message size" and reproduces its observed
// choices: throttle ~8 on KNL, ~4 on Broadwell, ~10 (one socket) on
// POWER8, shared-memory broadcast below the CMA crossover on Broadwell,
// ring allgather with socket-aware stride, and so on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coll/algo.h"
#include "coll/reduce.h"
#include "topo/arch_spec.h"

namespace kacc::coll {

class Tuner {
public:
  struct Choice {
    ScatterAlgo scatter = ScatterAlgo::kAuto;
    GatherAlgo gather = GatherAlgo::kAuto;
    AlltoallAlgo alltoall = AlltoallAlgo::kAuto;
    AllgatherAlgo allgather = AllgatherAlgo::kAuto;
    BcastAlgo bcast = BcastAlgo::kAuto;
    ReduceAlgo reduce = ReduceAlgo::kAuto;
    AllreduceAlgo allreduce = AllreduceAlgo::kAuto;
    int throttle = 0;
    int ring_stride = 1;
    /// kHier winners: composition depth (phases) and pipeline stripe
    /// grain in bytes; 0 when a flat algorithm won.
    int hier_levels = 0;
    std::size_t stripe_bytes = 0;
    double predicted_us = 0.0; ///< model cost of the winning configuration
  };

  [[nodiscard]] Choice scatter(const ArchSpec& s, int p,
                               std::uint64_t bytes) const;
  [[nodiscard]] Choice gather(const ArchSpec& s, int p,
                              std::uint64_t bytes) const;
  [[nodiscard]] Choice alltoall(const ArchSpec& s, int p,
                                std::uint64_t bytes) const;
  [[nodiscard]] Choice allgather(const ArchSpec& s, int p,
                                 std::uint64_t bytes) const;
  [[nodiscard]] Choice bcast(const ArchSpec& s, int p,
                             std::uint64_t bytes) const;
  [[nodiscard]] Choice reduce(const ArchSpec& s, int p,
                              std::uint64_t bytes) const;
  [[nodiscard]] Choice allreduce(const ArchSpec& s, int p,
                                 std::uint64_t bytes) const;

  /// Throttle factors the tuner sweeps: powers of two plus the socket
  /// width, clamped to [1, p-1].
  [[nodiscard]] static std::vector<int> throttle_candidates(
      const ArchSpec& s, int p);
};

} // namespace kacc::coll
