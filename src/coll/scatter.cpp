#include "coll/scatter.h"

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

void scatter(Comm& comm, const void* sendbuf, void* recvbuf,
             std::size_t bytes, int root, ScatterAlgo algo,
             const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "scatter: root out of range");
  validate_options(opts);
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr || (opts.in_place && comm.rank() == root),
                 "scatter: recvbuf required");
  KACC_CHECK_MSG(comm.rank() != root || sendbuf != nullptr,
                 "scatter: root needs sendbuf");

  CollOptions eff = opts;
  if (algo == ScatterAlgo::kAuto) {
    const Tuner::Choice c = Tuner().scatter(comm.arch(), p, bytes);
    algo = c.scatter;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kScatter,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(), static_cast<std::int64_t>(bytes),
                      root, to_string(algo).c_str());

  auto sched =
      nbc::compile_scatter(comm, sendbuf, recvbuf, bytes, root, algo, eff, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
