#include "coll/scatter.h"

#include <cstdint>

#include "coll/tuner.h"
#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {
namespace {

/// Position of a non-root rank in the 0..p-2 wave ordering.
int nonroot_pos(int rank, int root) { return rank < root ? rank : rank - 1; }

/// Inverse of nonroot_pos.
int nonroot_rank(int pos, int root) { return pos < root ? pos : pos + 1; }

/// Ranks in the last wave of a k-throttled schedule over p-1 readers.
int last_wave_size(int p, int k) {
  const int readers = p - 1;
  const int rem = readers % k;
  return rem == 0 ? std::min(k, readers) : rem;
}

void scatter_parallel_read(Comm& comm, const void* sendbuf, void* recvbuf,
                           std::size_t bytes, int root, bool in_place) {
  std::uint64_t root_addr = comm.rank() == root ? comm.expose(sendbuf) : 0;
  comm.ctrl_bcast(&root_addr, sizeof(root_addr), root);
  char token = 0;
  if (comm.rank() == root) {
    if (!in_place) {
      comm.local_copy(recvbuf,
                      static_cast<const std::byte*>(sendbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      bytes);
    }
    std::vector<char> tokens(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&token, tokens.data(), 1, root);
  } else {
    comm.cma_read(root,
                  root_addr + static_cast<std::uint64_t>(comm.rank()) * bytes,
                  recvbuf, bytes);
    comm.ctrl_gather(&token, nullptr, 1, root);
  }
}

void scatter_sequential_write(Comm& comm, const void* sendbuf, void* recvbuf,
                              std::size_t bytes, int root, bool in_place) {
  // Order of the address exchange is reversed vs parallel read: the root
  // gathers every receive-buffer address, then notifies on completion.
  std::uint64_t my_addr = comm.expose(recvbuf);
  char token = 0;
  if (comm.rank() == root) {
    std::vector<std::uint64_t> addrs(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&my_addr, addrs.data(), sizeof(my_addr), root);
    if (!in_place) {
      comm.local_copy(recvbuf,
                      static_cast<const std::byte*>(sendbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      bytes);
    }
    for (int q = 0; q < comm.size(); ++q) {
      if (q == root) {
        continue;
      }
      comm.cma_write(q, addrs[static_cast<std::size_t>(q)],
                     static_cast<const std::byte*>(sendbuf) +
                         static_cast<std::size_t>(q) * bytes,
                     bytes);
    }
    comm.ctrl_bcast(&token, 1, root);
  } else {
    comm.ctrl_gather(&my_addr, nullptr, sizeof(my_addr), root);
    comm.ctrl_bcast(&token, 1, root);
  }
}

void scatter_throttled_read(Comm& comm, const void* sendbuf, void* recvbuf,
                            std::size_t bytes, int root, int k,
                            bool in_place) {
  const int p = comm.size();
  KACC_CHECK_MSG(k >= 1, "throttled scatter: k >= 1");
  std::uint64_t root_addr = comm.rank() == root ? comm.expose(sendbuf) : 0;
  comm.ctrl_bcast(&root_addr, sizeof(root_addr), root);

  if (comm.rank() == root) {
    if (!in_place) {
      comm.local_copy(recvbuf,
                      static_cast<const std::byte*>(sendbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      bytes);
    }
    // The final-wave readers each acknowledge: a single ack from the last
    // rank is not enough because k reads complete concurrently (§IV-A3).
    const int lw = last_wave_size(p, k);
    for (int i = 0; i < lw; ++i) {
      const int pos = (p - 1) - lw + i;
      comm.wait_signal(nonroot_rank(pos, root));
    }
    return;
  }

  const int pos = nonroot_pos(comm.rank(), root);
  if (pos - k >= 0) {
    comm.wait_signal(nonroot_rank(pos - k, root));
  }
  comm.cma_read(root,
                root_addr + static_cast<std::uint64_t>(comm.rank()) * bytes,
                recvbuf, bytes);
  if (pos + k <= p - 2) {
    comm.signal(nonroot_rank(pos + k, root));
  }
  const int lw = last_wave_size(p, k);
  if (pos >= (p - 1) - lw) {
    comm.signal(root);
  }
}

} // namespace

void scatter(Comm& comm, const void* sendbuf, void* recvbuf,
             std::size_t bytes, int root, ScatterAlgo algo,
             const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "scatter: root out of range");
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(recvbuf != nullptr || (opts.in_place && comm.rank() == root),
                 "scatter: recvbuf required");
  KACC_CHECK_MSG(comm.rank() != root || sendbuf != nullptr,
                 "scatter: root needs sendbuf");

  CollOptions eff = opts;
  if (algo == ScatterAlgo::kAuto) {
    const Tuner::Choice c = Tuner().scatter(comm.arch(), p, bytes);
    algo = c.scatter;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kScatter,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());

  if (p == 1) {
    if (!eff.in_place) {
      comm.local_copy(recvbuf, sendbuf, bytes);
    }
    return;
  }

  switch (algo) {
    case ScatterAlgo::kParallelRead:
      scatter_parallel_read(comm, sendbuf, recvbuf, bytes, root,
                            eff.in_place);
      break;
    case ScatterAlgo::kSequentialWrite:
      scatter_sequential_write(comm, sendbuf, recvbuf, bytes, root,
                               eff.in_place);
      break;
    case ScatterAlgo::kThrottledRead: {
      const int k = eff.throttle > 0 ? eff.throttle : 4;
      scatter_throttled_read(comm, sendbuf, recvbuf, bytes, root,
                             std::min(k, p - 1), eff.in_place);
      break;
    }
    case ScatterAlgo::kAuto:
      throw InternalError("scatter: tuner returned kAuto");
  }
}

} // namespace kacc::coll
