// Algorithm identifiers and shared options for kacc collectives.
#pragma once

#include <cstddef>
#include <string>

namespace kacc::coll {

enum class ScatterAlgo {
  kAuto,            ///< Tuner decides from arch + message size
  kParallelRead,    ///< all non-roots read concurrently (§IV-A1)
  kSequentialWrite, ///< root writes one block at a time (§IV-A2)
  kThrottledRead,   ///< k concurrent readers, chained signals (§IV-A3)
  kHier,            ///< N-level leader tree fans out, tuned deepest phase
};

enum class GatherAlgo {
  kAuto,
  kParallelWrite,  ///< §IV-B1
  kSequentialRead, ///< §IV-B2
  kThrottledWrite, ///< §IV-B3
  kHier,           ///< tuned deepest gather, then leader slabs climb up
};

enum class AlltoallAlgo {
  kAuto,
  kPairwise,      ///< native CMA pairwise exchange (§IV-C1, CMA-coll)
  kPairwisePt2pt, ///< pairwise over RTS/CTS point-to-point CMA (CMA-pt2pt)
  kPairwiseShmem, ///< pairwise over the two-copy shm pipe (SHMEM)
  kBruck,         ///< log-step alltoall (§IV-C2)
};

enum class AllgatherAlgo {
  kAuto,
  kRingNeighbor,      ///< read from (rank - j), per-step notify (§V-A1)
  kRingSourceRead,    ///< read block i from its original source (§V-A2)
  kRingSourceWrite,   ///< write own block to (rank + i) (§V-A2)
  kRecursiveDoubling, ///< §V-A3
  kBruck,             ///< §V-A4
  kHier,              ///< deepest gather, leader slab exchange, N-level bcast
};

enum class BcastAlgo {
  kAuto,
  kDirectRead,       ///< all non-roots read root concurrently (§V-B1)
  kDirectWrite,      ///< root writes to each non-root (§V-B1)
  kKnomialRead,      ///< k-nomial tree of reads (§V-B2)
  kKnomialWrite,     ///< k-nomial tree of writes
  kScatterAllgather, ///< Van de Geijn (§V-B3)
  kShmemTree,        ///< binomial tree over the two-copy shm pipes
  kShmemSlot,        ///< slotted shared-buffer bcast: one copy-in, p-1
                     ///< concurrent copy-outs (MVAPICH2-style; the
                     ///< small-message design the tuner falls back to)
  kHier,             ///< N-level leader tree, chunk-striped fan-out pipeline
};

/// Per-call knobs. Zero values mean "let the algorithm/tuner choose".
struct CollOptions {
  /// Throttle factor k for throttled scatter/gather and k-nomial bcast.
  int throttle = 0;
  /// Neighbor stride j for Ring-Neighbor allgather (gcd(p, j) must be 1).
  int ring_stride = 1;
  /// MPI_IN_PLACE semantics: the caller's own block is already in place.
  bool in_place = false;
  /// kHier composition depth: number of phases in the level tree (2 == the
  /// classic two-level split at the coarsest boundary). 0 lets the model
  /// pick; values beyond the architecture's depth are clamped.
  int hier_levels = 0;
  /// kHier pipeline stripe grain in bytes for the downward distribute
  /// phases (bcast, allgather/allreduce fan-out). 0 lets the model pick; a
  /// grain at or above the payload disables striping.
  std::size_t stripe_bytes = 0;
};

/// Validates the option invariants shared by every entry point: negative
/// knobs are programming errors. Raises InvalidArgument (not
/// InternalError) because this guards caller input, not kacc state.
void validate_options(const CollOptions& opts);

/// Validates a Ring-Neighbor stride against the team size: the ring only
/// visits every block when gcd(p, j mod p) == 1. Raises InvalidArgument.
void validate_ring_stride(int p, int ring_stride);

std::string to_string(ScatterAlgo a);
std::string to_string(GatherAlgo a);
std::string to_string(AlltoallAlgo a);
std::string to_string(AllgatherAlgo a);
std::string to_string(BcastAlgo a);

} // namespace kacc::coll
