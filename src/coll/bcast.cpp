#include "coll/bcast.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll/tuner.h"
#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {
namespace {

/// k-nomial tree bookkeeping over virtual ranks (vrank 0 is the root).
/// A vrank's parent clears its lowest nonzero digit in base (k+1); its
/// children set one digit below that position.
struct KnomialNode {
  int parent = -1;          ///< vrank of parent (-1 for the root)
  std::vector<int> children; ///< vranks, coarsest level first
};

KnomialNode knomial_node(int vrank, int p, int k) {
  const int radix = k + 1;
  KnomialNode node;
  // Lowest nonzero digit position of vrank (or the highest level for 0).
  int d_low = 0;
  if (vrank > 0) {
    int v = vrank;
    while (v % radix == 0) {
      v /= radix;
      ++d_low;
    }
    std::int64_t unit = 1;
    for (int i = 0; i < d_low; ++i) {
      unit *= radix;
    }
    node.parent = vrank - (v % radix) * static_cast<int>(unit);
  } else {
    std::int64_t unit = 1;
    while (unit < p) {
      unit *= radix;
      ++d_low;
    }
  }
  // Children: digits below d_low, coarsest first.
  std::int64_t unit = 1;
  for (int i = 1; i < d_low; ++i) {
    unit *= radix;
  }
  for (int d = d_low - 1; d >= 0; --d) {
    for (int a = 1; a <= k; ++a) {
      const std::int64_t c = vrank + static_cast<std::int64_t>(a) * unit;
      if (c < p) {
        node.children.push_back(static_cast<int>(c));
      }
    }
    unit /= radix;
  }
  return node;
}

void bcast_direct_read(Comm& comm, void* buf, std::size_t bytes, int root) {
  std::uint64_t root_addr = comm.rank() == root ? comm.expose(buf) : 0;
  comm.ctrl_bcast(&root_addr, sizeof(root_addr), root);
  char token = 0;
  if (comm.rank() == root) {
    std::vector<char> tokens(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&token, tokens.data(), 1, root);
  } else {
    comm.cma_read(root, root_addr, buf, bytes);
    comm.ctrl_gather(&token, nullptr, 1, root);
  }
}

void bcast_direct_write(Comm& comm, void* buf, std::size_t bytes, int root) {
  std::uint64_t my_addr = comm.expose(buf);
  char token = 0;
  if (comm.rank() == root) {
    std::vector<std::uint64_t> addrs(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&my_addr, addrs.data(), sizeof(my_addr), root);
    for (int q = 0; q < comm.size(); ++q) {
      if (q != root) {
        comm.cma_write(q, addrs[static_cast<std::size_t>(q)], buf, bytes);
      }
    }
    comm.ctrl_bcast(&token, 1, root);
  } else {
    comm.ctrl_gather(&my_addr, nullptr, sizeof(my_addr), root);
    comm.ctrl_bcast(&token, 1, root);
  }
}

/// k-nomial read tree (§V-B2): up to k children read a parent's buffer
/// concurrently per round — the broadcast analogue of throttled reads.
void bcast_knomial_read(Comm& comm, void* buf, std::size_t bytes, int root,
                        int k) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int vrank = pmod(rank - root, p);
  auto actual = [&](int v) { return pmod(v + root, p); };

  std::uint64_t my_addr = comm.expose(buf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));

  const KnomialNode node = knomial_node(vrank, p, k);
  if (node.parent >= 0) {
    const int parent = actual(node.parent);
    comm.wait_signal(parent);
    comm.cma_read(parent, addrs[static_cast<std::size_t>(parent)], buf,
                  bytes);
    comm.signal(parent); // FIN: parent's buffer no longer needed by us
  }
  // Serve children one level at a time: signal a wave of <= k readers,
  // then collect their FINs before releasing the next wave. This keeps the
  // concurrency at this buffer bounded by k.
  std::size_t i = 0;
  while (i < node.children.size()) {
    const std::size_t wave_end = std::min(i + static_cast<std::size_t>(k),
                                          node.children.size());
    for (std::size_t c = i; c < wave_end; ++c) {
      comm.signal(actual(node.children[c]));
    }
    for (std::size_t c = i; c < wave_end; ++c) {
      comm.wait_signal(actual(node.children[c]));
    }
    i = wave_end;
  }
}

/// k-nomial write tree: parents push into children's buffers; no FIN
/// needed because the writer owns the pacing.
void bcast_knomial_write(Comm& comm, void* buf, std::size_t bytes, int root,
                         int k) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int vrank = pmod(rank - root, p);
  auto actual = [&](int v) { return pmod(v + root, p); };

  std::uint64_t my_addr = comm.expose(buf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));

  const KnomialNode node = knomial_node(vrank, p, k);
  if (node.parent >= 0) {
    comm.wait_signal(actual(node.parent));
  }
  for (int child_v : node.children) {
    const int child = actual(child_v);
    comm.cma_write(child, addrs[static_cast<std::size_t>(child)], buf, bytes);
    comm.signal(child);
  }
  // Readers of our buffer: none (write-based); safe to return. A final
  // barrier is still required so the root cannot overwrite `buf` while a
  // descendant is mid-copy of... (writes are parent-owned, so no: every
  // byte a child sees was pushed by its parent). No barrier needed.
}

/// Van de Geijn scatter-allgather (§V-B3): sequential-write scatter of
/// eta/p chunks, then a contention-free ring-source allgather of chunks.
void bcast_scatter_allgather(Comm& comm, void* buf, std::size_t bytes,
                             int root) {
  const int p = comm.size();
  const int rank = comm.rank();

  // Balanced block distribution of the message across ranks.
  const std::size_t base = bytes / static_cast<std::size_t>(p);
  const std::size_t rem = bytes % static_cast<std::size_t>(p);
  auto count_of = [&](int q) {
    return base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
  };
  auto off_of = [&](int q) {
    const auto uq = static_cast<std::size_t>(q);
    return uq * base + std::min(uq, rem);
  };

  std::uint64_t my_addr = comm.expose(buf);
  std::vector<std::uint64_t> addrs(static_cast<std::size_t>(p));
  comm.ctrl_allgather(&my_addr, addrs.data(), sizeof(my_addr));

  // Phase 1: root writes chunk q into rank q's buffer (no contention).
  if (rank == root) {
    for (int q = 0; q < p; ++q) {
      if (q == root || count_of(q) == 0) {
        continue;
      }
      comm.cma_write(q, addrs[static_cast<std::size_t>(q)] + off_of(q),
                     static_cast<const std::byte*>(buf) + off_of(q),
                     count_of(q));
    }
  }
  comm.barrier();

  // Phase 2: ring-source allgather of the chunks.
  for (int step = 1; step < p; ++step) {
    const int src = pmod(rank - step, p);
    if (count_of(src) == 0) {
      continue;
    }
    comm.cma_read(src, addrs[static_cast<std::size_t>(src)] + off_of(src),
                  static_cast<std::byte*>(buf) + off_of(src), count_of(src));
  }
  comm.barrier();
}

/// Binomial tree over the two-copy shm pipes — the classic small-message
/// shared-memory broadcast the tuner prefers below the CMA crossover.
void bcast_shmem_tree(Comm& comm, void* buf, std::size_t bytes, int root) {
  const int p = comm.size();
  const int relative = pmod(comm.rank() - root, p);
  auto actual = [&](int v) { return pmod(v + root, p); };

  int mask = 1;
  while (mask < p) {
    if ((relative & mask) != 0) {
      comm.shm_recv(actual(relative - mask), buf, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      comm.shm_send(actual(relative + mask), buf, bytes);
    }
    mask >>= 1;
  }
}

} // namespace

void bcast(Comm& comm, void* buf, std::size_t bytes, int root,
           BcastAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "bcast: root out of range");
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(buf != nullptr, "bcast: buf required");

  CollOptions eff = opts;
  if (algo == BcastAlgo::kAuto) {
    const Tuner::Choice c = Tuner().bcast(comm.arch(), p, bytes);
    algo = c.bcast;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kBcast,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());

  if (p == 1) {
    return;
  }

  switch (algo) {
    case BcastAlgo::kDirectRead:
      bcast_direct_read(comm, buf, bytes, root);
      break;
    case BcastAlgo::kDirectWrite:
      bcast_direct_write(comm, buf, bytes, root);
      break;
    case BcastAlgo::kKnomialRead: {
      const int k = std::min(eff.throttle > 0 ? eff.throttle : 4, p - 1);
      bcast_knomial_read(comm, buf, bytes, root, k);
      break;
    }
    case BcastAlgo::kKnomialWrite: {
      const int k = std::min(eff.throttle > 0 ? eff.throttle : 4, p - 1);
      bcast_knomial_write(comm, buf, bytes, root, k);
      break;
    }
    case BcastAlgo::kScatterAllgather:
      bcast_scatter_allgather(comm, buf, bytes, root);
      break;
    case BcastAlgo::kShmemTree:
      bcast_shmem_tree(comm, buf, bytes, root);
      break;
    case BcastAlgo::kShmemSlot:
      comm.shm_bcast(buf, bytes, root);
      break;
    case BcastAlgo::kAuto:
      throw InternalError("bcast: tuner returned kAuto");
  }
}

} // namespace kacc::coll
