#include "coll/bcast.h"

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

void bcast(Comm& comm, void* buf, std::size_t bytes, int root,
           BcastAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "bcast: root out of range");
  validate_options(opts);
  if (opts.in_place) {
    throw InvalidArgument("bcast: in_place is not defined for bcast");
  }
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(buf != nullptr, "bcast: buf required");

  CollOptions eff = opts;
  if (algo == BcastAlgo::kAuto) {
    const Tuner::Choice c = Tuner().bcast(comm.arch(), p, bytes);
    algo = c.bcast;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kBcast,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(), static_cast<std::int64_t>(bytes),
                      root, to_string(algo).c_str());

  auto sched = nbc::compile_bcast(comm, buf, bytes, root, algo, eff, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
