// Reduction collectives: MPI_Reduce / MPI_Allreduce semantics over double
// operands — the "extend these designs to other collectives" direction the
// paper's conclusion names. The contention analysis carries over directly:
//
//   * write-based reductions funnel partial vectors into ONE process, so
//     they contend on its page-table lock exactly like Gather — the
//     throttled gather-combine design applies;
//   * read-based trees pull from DISTINCT children per round, so they are
//     contention free but pay log p combine rounds;
//   * reduce-scatter phases are pairwise (distinct peers) and contention
//     free, like the Alltoall pairwise exchange.
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Combine operator applied element-wise to double operands.
enum class ReduceOp {
  kSum,
  kMax,
};

enum class ReduceAlgo {
  kAuto,
  kGatherCombine,        ///< tuned (throttled) gather + root combines all
  kBinomialRead,         ///< log p rounds of contention-free child reads
  kReduceScatterGather,  ///< recursive halving, then chunk gather to root
  kHier,                 ///< deepest reduce, partials climb the leader tree
};

enum class AllreduceAlgo {
  kAuto,
  kReduceBcast,       ///< tuned reduce followed by tuned bcast
  kRecursiveDoubling, ///< lg p full-vector exchanges, everyone combines
  kRabenseifner,      ///< reduce-scatter + allgather (bandwidth optimal)
  kHier,              ///< reduce up the tree, leader allreduce, striped bcast
};

std::string to_string(ReduceOp op);
std::string to_string(ReduceAlgo a);
std::string to_string(AllreduceAlgo a);

/// Applies `op` element-wise: acc[i] = op(acc[i], in[i]).
void combine(ReduceOp op, double* acc, const double* in, std::size_t count);

/// Reduces `count` doubles from every rank into root's `recv`. `send` and
/// `recv` must not alias; non-roots may pass recv == nullptr.
void reduce(Comm& comm, const double* send, double* recv, std::size_t count,
            ReduceOp op, int root, ReduceAlgo algo = ReduceAlgo::kAuto,
            const CollOptions& opts = {});

/// Reduces into every rank's `recv`.
void allreduce(Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op,
               AllreduceAlgo algo = AllreduceAlgo::kAuto,
               const CollOptions& opts = {});

} // namespace kacc::coll
