// All-to-all personalized collective: MPI_Alltoall semantics.
//
// Every rank holds p blocks in `sendbuf` (block q destined for rank q) and
// ends with p blocks in `recvbuf` (block q originating at rank q).
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Exchanges `bytes` per rank pair. With opts.in_place the caller's own
/// block is assumed already at recvbuf[rank].
void alltoall(Comm& comm, const void* sendbuf, void* recvbuf,
              std::size_t bytes, AlltoallAlgo algo = AlltoallAlgo::kAuto,
              const CollOptions& opts = {});

} // namespace kacc::coll
