// One-to-all non-personalized collective: MPI_Bcast semantics.
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Broadcasts `bytes` from root's `buf` into everyone's `buf`.
/// opts.throttle selects k for the k-nomial algorithms.
void bcast(Comm& comm, void* buf, std::size_t bytes, int root,
           BcastAlgo algo = BcastAlgo::kAuto, const CollOptions& opts = {});

} // namespace kacc::coll
