#include "coll/gather.h"

#include "coll/tuner.h"
#include "common/error.h"
#include "nbc/compile.h"

namespace kacc::coll {

void gather(Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
            int root, GatherAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "gather: root out of range");
  validate_options(opts);
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(comm.rank() != root || recvbuf != nullptr,
                 "gather: root needs recvbuf");
  KACC_CHECK_MSG(sendbuf != nullptr || (opts.in_place && comm.rank() == root),
                 "gather: sendbuf required");

  CollOptions eff = opts;
  if (algo == GatherAlgo::kAuto) {
    const Tuner::Choice c = Tuner().gather(comm.arch(), p, bytes);
    algo = c.gather;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kGather,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());
  obs::CollScope coll(comm.recorder(), static_cast<std::int64_t>(bytes),
                      root, to_string(algo).c_str());

  auto sched =
      nbc::compile_gather(comm, sendbuf, recvbuf, bytes, root, algo, eff, {});
  nbc::drain(comm, *sched);
}

} // namespace kacc::coll
