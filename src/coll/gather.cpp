#include "coll/gather.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coll/tuner.h"
#include "common/error.h"

namespace kacc::coll {
namespace {

int nonroot_pos(int rank, int root) { return rank < root ? rank : rank - 1; }
int nonroot_rank(int pos, int root) { return pos < root ? pos : pos + 1; }

int last_wave_size(int p, int k) {
  const int writers = p - 1;
  const int rem = writers % k;
  return rem == 0 ? std::min(k, writers) : rem;
}

void gather_parallel_write(Comm& comm, const void* sendbuf, void* recvbuf,
                           std::size_t bytes, int root, bool in_place) {
  std::uint64_t root_addr = comm.rank() == root ? comm.expose(recvbuf) : 0;
  comm.ctrl_bcast(&root_addr, sizeof(root_addr), root);
  char token = 0;
  if (comm.rank() == root) {
    if (!in_place) {
      comm.local_copy(static_cast<std::byte*>(recvbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      sendbuf, bytes);
    }
    std::vector<char> tokens(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&token, tokens.data(), 1, root);
  } else {
    comm.cma_write(root,
                   root_addr + static_cast<std::uint64_t>(comm.rank()) * bytes,
                   sendbuf, bytes);
    comm.ctrl_gather(&token, nullptr, 1, root);
  }
}

void gather_sequential_read(Comm& comm, const void* sendbuf, void* recvbuf,
                            std::size_t bytes, int root, bool in_place) {
  std::uint64_t my_addr = comm.expose(sendbuf);
  char token = 0;
  if (comm.rank() == root) {
    std::vector<std::uint64_t> addrs(static_cast<std::size_t>(comm.size()));
    comm.ctrl_gather(&my_addr, addrs.data(), sizeof(my_addr), root);
    if (!in_place) {
      comm.local_copy(static_cast<std::byte*>(recvbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      sendbuf, bytes);
    }
    for (int q = 0; q < comm.size(); ++q) {
      if (q == root) {
        continue;
      }
      comm.cma_read(q, addrs[static_cast<std::size_t>(q)],
                    static_cast<std::byte*>(recvbuf) +
                        static_cast<std::size_t>(q) * bytes,
                    bytes);
    }
    comm.ctrl_bcast(&token, 1, root);
  } else {
    comm.ctrl_gather(&my_addr, nullptr, sizeof(my_addr), root);
    comm.ctrl_bcast(&token, 1, root);
  }
}

void gather_throttled_write(Comm& comm, const void* sendbuf, void* recvbuf,
                            std::size_t bytes, int root, int k,
                            bool in_place) {
  const int p = comm.size();
  KACC_CHECK_MSG(k >= 1, "throttled gather: k >= 1");
  std::uint64_t root_addr = comm.rank() == root ? comm.expose(recvbuf) : 0;
  comm.ctrl_bcast(&root_addr, sizeof(root_addr), root);

  if (comm.rank() == root) {
    if (!in_place) {
      comm.local_copy(static_cast<std::byte*>(recvbuf) +
                          static_cast<std::size_t>(root) * bytes,
                      sendbuf, bytes);
    }
    const int lw = last_wave_size(p, k);
    for (int i = 0; i < lw; ++i) {
      const int pos = (p - 1) - lw + i;
      comm.wait_signal(nonroot_rank(pos, root));
    }
    return;
  }

  const int pos = nonroot_pos(comm.rank(), root);
  if (pos - k >= 0) {
    comm.wait_signal(nonroot_rank(pos - k, root));
  }
  comm.cma_write(root,
                 root_addr + static_cast<std::uint64_t>(comm.rank()) * bytes,
                 sendbuf, bytes);
  if (pos + k <= p - 2) {
    comm.signal(nonroot_rank(pos + k, root));
  }
  const int lw = last_wave_size(p, k);
  if (pos >= (p - 1) - lw) {
    comm.signal(root);
  }
}

} // namespace

void gather(Comm& comm, const void* sendbuf, void* recvbuf, std::size_t bytes,
            int root, GatherAlgo algo, const CollOptions& opts) {
  const int p = comm.size();
  KACC_CHECK_MSG(root >= 0 && root < p, "gather: root out of range");
  if (bytes == 0) {
    comm.barrier();
    return;
  }
  KACC_CHECK_MSG(comm.rank() != root || recvbuf != nullptr,
                 "gather: root needs recvbuf");
  KACC_CHECK_MSG(sendbuf != nullptr || (opts.in_place && comm.rank() == root),
                 "gather: sendbuf required");

  CollOptions eff = opts;
  if (algo == GatherAlgo::kAuto) {
    const Tuner::Choice c = Tuner().gather(comm.arch(), p, bytes);
    algo = c.gather;
    if (eff.throttle == 0) {
      eff.throttle = c.throttle;
    }
  }

  comm.recorder().counters.add(obs::Counter::kCollLaunches);
  obs::Span span(comm.recorder(), obs::SpanName::kGather,
                 static_cast<std::int64_t>(bytes), root,
                 to_string(algo).c_str());

  if (p == 1) {
    if (!eff.in_place) {
      comm.local_copy(recvbuf, sendbuf, bytes);
    }
    return;
  }

  switch (algo) {
    case GatherAlgo::kParallelWrite:
      gather_parallel_write(comm, sendbuf, recvbuf, bytes, root,
                            eff.in_place);
      break;
    case GatherAlgo::kSequentialRead:
      gather_sequential_read(comm, sendbuf, recvbuf, bytes, root,
                             eff.in_place);
      break;
    case GatherAlgo::kThrottledWrite: {
      const int k = eff.throttle > 0 ? eff.throttle : 4;
      gather_throttled_write(comm, sendbuf, recvbuf, bytes, root,
                             std::min(k, p - 1), eff.in_place);
      break;
    }
    case GatherAlgo::kAuto:
      throw InternalError("gather: tuner returned kAuto");
  }
}

} // namespace kacc::coll
