// One-to-all personalized collective: MPI_Scatter semantics.
//
// The root holds p blocks of `bytes` each in `sendbuf` (rank-major); every
// rank (root included) ends with its own block in `recvbuf`.
#pragma once

#include <cstddef>

#include "coll/algo.h"
#include "runtime/comm.h"

namespace kacc::coll {

/// Scatters `bytes` per rank from root. At non-roots `sendbuf` is ignored.
/// With opts.in_place the root's own block is assumed already in place and
/// no self-copy happens. kAuto routes through the Tuner.
void scatter(Comm& comm, const void* sendbuf, void* recvbuf,
             std::size_t bytes, int root, ScatterAlgo algo = ScatterAlgo::kAuto,
             const CollOptions& opts = {});

} // namespace kacc::coll
