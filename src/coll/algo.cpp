#include "coll/algo.h"

#include "common/error.h"
#include "common/mathutil.h"

namespace kacc::coll {

void validate_options(const CollOptions& opts) {
  if (opts.throttle < 0) {
    throw InvalidArgument("CollOptions: throttle must be >= 0 (0 = auto)");
  }
  if (opts.ring_stride < 0) {
    throw InvalidArgument("CollOptions: ring_stride must be >= 0 (0 = auto)");
  }
  if (opts.hier_levels < 0 || opts.hier_levels == 1) {
    throw InvalidArgument(
        "CollOptions: hier_levels must be 0 (auto) or >= 2 phases");
  }
}

void validate_ring_stride(int p, int ring_stride) {
  const int j = ring_stride > 0 ? ring_stride : 1;
  if (gcd_u64(static_cast<std::uint64_t>(p),
              static_cast<std::uint64_t>(pmod(j, p))) != 1) {
    throw InvalidArgument(
        "allgather: ring_stride must be coprime with the team size "
        "(gcd(p, j) == 1)");
  }
}

std::string to_string(ScatterAlgo a) {
  switch (a) {
    case ScatterAlgo::kAuto: return "auto";
    case ScatterAlgo::kParallelRead: return "parallel-read";
    case ScatterAlgo::kSequentialWrite: return "sequential-write";
    case ScatterAlgo::kThrottledRead: return "throttled-read";
    case ScatterAlgo::kHier: return "hier";
  }
  return "?";
}

std::string to_string(GatherAlgo a) {
  switch (a) {
    case GatherAlgo::kAuto: return "auto";
    case GatherAlgo::kParallelWrite: return "parallel-write";
    case GatherAlgo::kSequentialRead: return "sequential-read";
    case GatherAlgo::kThrottledWrite: return "throttled-write";
    case GatherAlgo::kHier: return "hier";
  }
  return "?";
}

std::string to_string(AlltoallAlgo a) {
  switch (a) {
    case AlltoallAlgo::kAuto: return "auto";
    case AlltoallAlgo::kPairwise: return "pairwise-cma-coll";
    case AlltoallAlgo::kPairwisePt2pt: return "pairwise-cma-pt2pt";
    case AlltoallAlgo::kPairwiseShmem: return "pairwise-shmem";
    case AlltoallAlgo::kBruck: return "bruck";
  }
  return "?";
}

std::string to_string(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::kAuto: return "auto";
    case AllgatherAlgo::kRingNeighbor: return "ring-neighbor";
    case AllgatherAlgo::kRingSourceRead: return "ring-source-read";
    case AllgatherAlgo::kRingSourceWrite: return "ring-source-write";
    case AllgatherAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllgatherAlgo::kBruck: return "bruck";
    case AllgatherAlgo::kHier: return "hier";
  }
  return "?";
}

std::string to_string(BcastAlgo a) {
  switch (a) {
    case BcastAlgo::kAuto: return "auto";
    case BcastAlgo::kDirectRead: return "direct-read";
    case BcastAlgo::kDirectWrite: return "direct-write";
    case BcastAlgo::kKnomialRead: return "knomial-read";
    case BcastAlgo::kKnomialWrite: return "knomial-write";
    case BcastAlgo::kScatterAllgather: return "scatter-allgather";
    case BcastAlgo::kShmemTree: return "shmem-tree";
    case BcastAlgo::kShmemSlot: return "shmem-slot";
    case BcastAlgo::kHier: return "hier";
  }
  return "?";
}

} // namespace kacc::coll
