#include "coll/tuner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "model/predict.h"

namespace kacc::coll {
namespace {

/// Tracks the cheapest configuration seen so far.
struct Best {
  double cost = std::numeric_limits<double>::infinity();

  bool offer(double candidate) {
    if (candidate < cost) {
      cost = candidate;
      return true;
    }
    return false;
  }
};

/// True when at least one boundary level survives for this arch/p, i.e.
/// topo::Hierarchy::from_arch(s, p) is non-trivial and a composed plan
/// exists.
bool hier_applicable(const ArchSpec& s, int p) {
  return predict::hier_max_levels(s, p) >= 2;
}

/// Stamps a winning composed plan into the choice: the stripe count is
/// carried as a byte grain so the compiler recovers it from any payload.
void stamp_plan(Tuner::Choice* choice, const predict::HierPlan& plan,
                std::uint64_t striped_payload) {
  choice->hier_levels = plan.levels;
  choice->stripe_bytes =
      plan.stripes > 1
          ? static_cast<std::size_t>(
                (striped_payload + static_cast<std::uint64_t>(plan.stripes) -
                 1) /
                static_cast<std::uint64_t>(plan.stripes))
          : 0;
}

} // namespace

std::vector<int> Tuner::throttle_candidates(const ArchSpec& s, int p) {
  std::vector<int> ks;
  for (int k = 1; k < p; k *= 2) {
    ks.push_back(k);
  }
  const int cps = s.cores_per_socket;
  if (cps >= 1 && cps < p) {
    ks.push_back(cps); // "one socket's worth" avoids the inter-socket knee
  }
  if (p > 1) {
    ks.push_back(p - 1);
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

Tuner::Choice Tuner::scatter(const ArchSpec& s, int p,
                             std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::scatter_parallel_read(s, p, bytes))) {
    choice.scatter = ScatterAlgo::kParallelRead;
    choice.throttle = 0;
  }
  if (best.offer(predict::scatter_sequential_write(s, p, bytes))) {
    choice.scatter = ScatterAlgo::kSequentialWrite;
    choice.throttle = 0;
  }
  for (int k : throttle_candidates(s, p)) {
    if (best.offer(predict::scatter_throttled_read(s, p, bytes, k))) {
      choice.scatter = ScatterAlgo::kThrottledRead;
      choice.throttle = k;
    }
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_scatter(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.scatter = ScatterAlgo::kHier;
      choice.throttle = 0;
      stamp_plan(&choice, plan, 0);
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::gather(const ArchSpec& s, int p,
                            std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::gather_parallel_write(s, p, bytes))) {
    choice.gather = GatherAlgo::kParallelWrite;
    choice.throttle = 0;
  }
  if (best.offer(predict::gather_sequential_read(s, p, bytes))) {
    choice.gather = GatherAlgo::kSequentialRead;
    choice.throttle = 0;
  }
  for (int k : throttle_candidates(s, p)) {
    if (best.offer(predict::gather_throttled_write(s, p, bytes, k))) {
      choice.gather = GatherAlgo::kThrottledWrite;
      choice.throttle = k;
    }
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_gather(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.gather = GatherAlgo::kHier;
      choice.throttle = 0;
      stamp_plan(&choice, plan, 0);
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::alltoall(const ArchSpec& s, int p,
                              std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::alltoall_pairwise(s, p, bytes))) {
    choice.alltoall = AlltoallAlgo::kPairwise;
  }
  if (best.offer(predict::alltoall_bruck(s, p, bytes))) {
    choice.alltoall = AlltoallAlgo::kBruck;
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::allgather(const ArchSpec& s, int p,
                               std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::allgather_ring_source(s, p, bytes))) {
    choice.allgather = AllgatherAlgo::kRingSourceRead;
    choice.ring_stride = 1;
  }
  if (best.offer(predict::allgather_ring_neighbor(s, p, bytes, 1))) {
    choice.allgather = AllgatherAlgo::kRingNeighbor;
    choice.ring_stride = 1;
  }
  if (best.offer(predict::allgather_recursive_doubling(s, p, bytes))) {
    choice.allgather = AllgatherAlgo::kRecursiveDoubling;
  }
  if (best.offer(predict::allgather_bruck(s, p, bytes))) {
    choice.allgather = AllgatherAlgo::kBruck;
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_allgather(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.allgather = AllgatherAlgo::kHier;
      choice.ring_stride = 1;
      stamp_plan(&choice, plan,
                 bytes * static_cast<std::uint64_t>(p));
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::bcast(const ArchSpec& s, int p,
                           std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::bcast_direct_read(s, p, bytes))) {
    choice.bcast = BcastAlgo::kDirectRead;
  }
  if (best.offer(predict::bcast_direct_write(s, p, bytes))) {
    choice.bcast = BcastAlgo::kDirectWrite;
  }
  for (int k : throttle_candidates(s, p)) {
    if (best.offer(predict::bcast_knomial(s, p, bytes, k))) {
      choice.bcast = BcastAlgo::kKnomialRead;
      choice.throttle = k;
    }
  }
  if (best.offer(predict::bcast_scatter_allgather(s, p, bytes))) {
    choice.bcast = BcastAlgo::kScatterAllgather;
    choice.throttle = 0;
  }
  if (best.offer(predict::bcast_shmem_tree(s, p, bytes))) {
    choice.bcast = BcastAlgo::kShmemTree;
    choice.throttle = 0;
  }
  if (best.offer(predict::bcast_shmem_slot(s, p, bytes))) {
    choice.bcast = BcastAlgo::kShmemSlot;
    choice.throttle = 0;
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_bcast(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.bcast = BcastAlgo::kHier;
      choice.throttle = 0;
      stamp_plan(&choice, plan, bytes);
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::reduce(const ArchSpec& s, int p,
                            std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::reduce_gather_combine(s, p, bytes))) {
    choice.reduce = ReduceAlgo::kGatherCombine;
  }
  if (best.offer(predict::reduce_binomial_read(s, p, bytes))) {
    choice.reduce = ReduceAlgo::kBinomialRead;
  }
  if (best.offer(predict::reduce_rsg(s, p, bytes))) {
    choice.reduce = ReduceAlgo::kReduceScatterGather;
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_reduce(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.reduce = ReduceAlgo::kHier;
      stamp_plan(&choice, plan, 0);
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

Tuner::Choice Tuner::allreduce(const ArchSpec& s, int p,
                               std::uint64_t bytes) const {
  Choice choice;
  Best best;
  if (best.offer(predict::allreduce_reduce_bcast(s, p, bytes))) {
    choice.allreduce = AllreduceAlgo::kReduceBcast;
  }
  if (best.offer(predict::allreduce_recursive_doubling(s, p, bytes))) {
    choice.allreduce = AllreduceAlgo::kRecursiveDoubling;
  }
  if (best.offer(predict::allreduce_rabenseifner(s, p, bytes))) {
    choice.allreduce = AllreduceAlgo::kRabenseifner;
  }
  if (hier_applicable(s, p)) {
    const predict::HierPlan plan = predict::hier_plan_allreduce(s, p, bytes);
    if (plan.levels >= 2 && best.offer(plan.cost_us)) {
      choice.allreduce = AllreduceAlgo::kHier;
      stamp_plan(&choice, plan, bytes);
    }
  }
  choice.predicted_us = best.cost;
  return choice;
}

} // namespace kacc::coll
