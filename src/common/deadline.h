// Progress deadlines for blocking waits. A Deadline is a point on the
// monotonic clock; every potentially-unbounded spin in the native runtime
// carries one so a dead or wedged peer turns into a TimeoutError instead of
// an infinite nap. Deadline::never() preserves the old wait-forever
// behaviour where a caller explicitly wants it (single-process unit tests).
#pragma once

#include <chrono>
#include <cstdint>

namespace kacc {

class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  static Deadline never() { return Deadline{}; }

  /// Expires `ms` milliseconds from now.
  static Deadline after_ms(double ms) {
    Deadline d;
    d.unbounded_ = false;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       ms));
    return d;
  }

  [[nodiscard]] bool is_never() const { return unbounded_; }

  [[nodiscard]] bool expired() const {
    return !unbounded_ && Clock::now() >= expiry_;
  }

  /// Microseconds until expiry (0 when expired; huge when unbounded).
  [[nodiscard]] double remaining_us() const {
    if (unbounded_) {
      return 1e18;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          expiry_ - Clock::now())
                          .count();
    return us > 0.0 ? us : 0.0;
  }

private:
  bool unbounded_ = true;
  Clock::time_point expiry_{};
};

/// A budget of forward-progress checks: lets long multi-chunk operations
/// (ChunkPipe streaming a large message) extend their deadline every time
/// real progress happens, while still bounding the per-step wait. Consumed
/// step by step: `next()` mints a fresh per-step Deadline.
class ProgressBudget {
public:
  ProgressBudget() = default;
  explicit ProgressBudget(double step_ms) : step_ms_(step_ms) {}

  /// A fresh deadline for the next step; never() when step_ms <= 0.
  [[nodiscard]] Deadline next() const {
    return step_ms_ > 0.0 ? Deadline::after_ms(step_ms_) : Deadline::never();
  }

  [[nodiscard]] double step_ms() const { return step_ms_; }

private:
  double step_ms_ = 0.0; // <= 0 means unbounded
};

} // namespace kacc
