// Error handling primitives for kacc.
//
// kacc uses exceptions for unrecoverable errors (failed syscalls, protocol
// violations, invalid arguments). All exceptions thrown by the library derive
// from kacc::Error so callers can catch a single type at the API boundary.
#pragma once

#include <cerrno>
#include <cstring>
#include <source_location>
#include <stdexcept>
#include <string>

namespace kacc {

/// Base class for every exception thrown by kacc.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid arguments passed to a public API entry point.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A syscall failed; carries the errno value at the point of failure.
class SyscallError : public Error {
public:
  SyscallError(const std::string& what, int err)
      : Error(what + ": " + std::strerror(err)), errno_(err) {}

  [[nodiscard]] int sys_errno() const noexcept { return errno_; }

private:
  int errno_;
};

/// Internal invariant violated (a bug in kacc itself, not in the caller).
class InternalError : public Error {
public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// The simulated ranks reached a state where no rank can make progress.
class DeadlockError : public Error {
public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// A blocking wait exceeded its Deadline. Replaces the old behaviour of
/// napping forever in spin_until: a stuck peer now surfaces as a precise,
/// catchable error instead of a hung process.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A peer rank died (crashed, was killed, or exited mid-collective).
/// Carries the failed rank id so survivors can report exactly who is gone.
class PeerDiedError : public Error {
public:
  PeerDiedError(const std::string& what, int failed_rank)
      : Error(what), failed_rank_(failed_rank) {}

  [[nodiscard]] int failed_rank() const noexcept { return failed_rank_; }

private:
  int failed_rank_;
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* expr, const char* file,
                                     unsigned line, const std::string& msg);
[[noreturn]] void throw_syscall_failed(const char* expr, const char* file,
                                       unsigned line, int err);
} // namespace detail

} // namespace kacc

/// Checks a runtime condition and throws kacc::InternalError when violated.
/// Active in all build types; used for protocol and engine invariants.
#define KACC_CHECK(expr)                                                       \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::kacc::detail::throw_check_failed(#expr, __FILE__, __LINE__, "");       \
    }                                                                          \
  } while (0)

/// KACC_CHECK with an explanatory message appended to the exception text.
#define KACC_CHECK_MSG(expr, msg)                                              \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::kacc::detail::throw_check_failed(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                          \
  } while (0)

/// Evaluates a syscall expression; throws kacc::SyscallError on -1.
#define KACC_SYSCALL(expr)                                                     \
  do {                                                                         \
    if ((expr) == -1) {                                                        \
      ::kacc::detail::throw_syscall_failed(#expr, __FILE__, __LINE__, errno);  \
    }                                                                          \
  } while (0)
