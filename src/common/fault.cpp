#include "common/fault.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/error.h"

namespace kacc {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& field, const std::string& value) {
  if (value.empty()) {
    throw InvalidArgument("KACC_FAULT: empty value for '" + field + "'");
  }
  for (char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw InvalidArgument("KACC_FAULT: non-numeric value '" + value +
                            "' for '" + field + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size()) {
    throw InvalidArgument("KACC_FAULT: value '" + value + "' for '" + field +
                          "' does not fit in 64 bits");
  }
  return v;
}

} // namespace

int errno_from_name(const std::string& name) {
  if (!name.empty() &&
      std::isdigit(static_cast<unsigned char>(name[0])) != 0) {
    return static_cast<int>(parse_u64("errno", name));
  }
  if (name == "EPERM") return EPERM;
  if (name == "ESRCH") return ESRCH;
  if (name == "EINTR") return EINTR;
  if (name == "EIO") return EIO;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "ENOMEM") return ENOMEM;
  if (name == "EACCES") return EACCES;
  if (name == "EFAULT") return EFAULT;
  if (name == "EINVAL") return EINVAL;
  throw InvalidArgument("KACC_FAULT: unknown errno name '" + name + "'");
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) {
    return plan;
  }
  for (const std::string& rule_text : split(spec, ';')) {
    if (rule_text.empty()) {
      continue;
    }
    FaultRule rule;
    bool have_rank = false;
    bool have_op = false;
    bool have_effect = false;
    for (const std::string& field : split(rule_text, ',')) {
      const std::size_t colon = field.find(':');
      if (colon == std::string::npos) {
        throw InvalidArgument("KACC_FAULT: field without ':' in '" +
                              rule_text + "'");
      }
      const std::string key = field.substr(0, colon);
      const std::string value = field.substr(colon + 1);
      if (key == "rank") {
        if (have_rank) {
          throw InvalidArgument("KACC_FAULT: duplicate 'rank' in '" +
                                rule_text + "'");
        }
        const std::uint64_t r = parse_u64(key, value);
        if (r > 1'000'000) {
          throw InvalidArgument("KACC_FAULT: implausible rank " + value);
        }
        rule.rank = static_cast<int>(r);
        have_rank = true;
      } else if (key == "op") {
        if (have_op) {
          throw InvalidArgument("KACC_FAULT: duplicate 'op' in '" +
                                rule_text + "'");
        }
        rule.op = parse_u64(key, value);
        have_op = true;
      } else if (key == "errno" || key == "action" || key == "short") {
        if (have_effect) {
          throw InvalidArgument(
              "KACC_FAULT: rule has more than one effect "
              "(errno:/action:/short:) in '" + rule_text + "'");
        }
        if (key == "errno") {
          rule.action = FaultRule::Action::kErrno;
          rule.err = errno_from_name(value);
        } else if (key == "action") {
          if (value != "exit") {
            throw InvalidArgument("KACC_FAULT: unknown action '" + value +
                                  "' (only 'exit' is supported)");
          }
          rule.action = FaultRule::Action::kExit;
        } else {
          rule.action = FaultRule::Action::kShort;
          rule.cap = static_cast<std::size_t>(parse_u64(key, value));
          if (rule.cap == 0) {
            throw InvalidArgument("KACC_FAULT: short cap must be > 0");
          }
        }
        have_effect = true;
      } else {
        throw InvalidArgument("KACC_FAULT: unknown field '" + key + "'");
      }
    }
    if (!have_rank || !have_op || !have_effect) {
      throw InvalidArgument(
          "KACC_FAULT: rule needs rank:, op:, and one of errno:/action:/short: "
          "in '" + rule_text + "'");
    }
    if (rule.op == 0) {
      throw InvalidArgument("KACC_FAULT: op is 1-based, got 0");
    }
    plan.rules_.push_back(rule);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("KACC_FAULT");
  return spec != nullptr ? parse(spec) : FaultPlan{};
}

const FaultRule* FaultPlan::match(int rank, std::uint64_t op) const {
  for (const FaultRule& rule : rules_) {
    if (rule.rank != rank) {
      continue;
    }
    if (rule.action == FaultRule::Action::kShort ? op >= rule.op
                                                 : op == rule.op) {
      return &rule;
    }
  }
  return nullptr;
}

} // namespace kacc
