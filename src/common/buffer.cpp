#include "common/buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.h"
#include "common/mathutil.h"

namespace kacc {

AlignedBuffer::AlignedBuffer(std::size_t size, std::size_t alignment,
                             bool zero_init)
    : size_(size) {
  if (size == 0) {
    return;
  }
  KACC_CHECK_MSG(is_pow2(alignment), "alignment must be a power of two");
  void* p = std::aligned_alloc(alignment, align_up(size, alignment));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  data_ = static_cast<std::byte*>(p);
  if (zero_init) {
    std::memset(data_, 0, size_);
  }
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

void AlignedBuffer::fill(std::byte value) noexcept {
  if (data_ != nullptr) {
    std::memset(data_, static_cast<int>(value), size_);
  }
}

} // namespace kacc
