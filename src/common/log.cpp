#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <unistd.h>

namespace kacc {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("KACC_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

std::atomic<int>& rank_storage() {
  static std::atomic<int> rank{-1};
  return rank;
}

} // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

void log_set_rank(int rank) { rank_storage().store(rank); }

bool log_should_emit(const char* key, double interval_ms) {
  // Monotonic clock: rate limiting must not jump with wall-time changes.
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  const double now_ms = static_cast<double>(ts.tv_sec) * 1000.0 +
                        static_cast<double>(ts.tv_nsec) / 1'000'000.0;

  static std::mutex mu;
  static std::map<std::string, double> last_emit;
  std::lock_guard<std::mutex> lk(mu);
  auto [it, inserted] = last_emit.try_emplace(key, now_ms);
  if (inserted) {
    return true;
  }
  if (now_ms - it->second < interval_ms) {
    return false;
  }
  it->second = now_ms;
  return true;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Wall-clock timestamp with millisecond resolution; localtime_r keeps the
  // formatter signal/thread-safe enough for diagnostics.
  struct timespec ts {};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_buf {};
  ::localtime_r(&ts.tv_sec, &tm_buf);

  char prefix[128];
  const int rank = rank_storage().load();
  int n;
  if (rank >= 0) {
    n = std::snprintf(prefix, sizeof(prefix),
                      "[kacc %02d:%02d:%02d.%03ld %s pid=%d rank=%d] ",
                      tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                      ts.tv_nsec / 1'000'000, level_name(level),
                      static_cast<int>(::getpid()), rank);
  } else {
    n = std::snprintf(prefix, sizeof(prefix),
                      "[kacc %02d:%02d:%02d.%03ld %s pid=%d] ",
                      tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                      ts.tv_nsec / 1'000'000, level_name(level),
                      static_cast<int>(::getpid()));
  }
  if (n < 0) {
    n = 0;
  }

  // One write(2) per line: forked rank processes share stderr, and a single
  // syscall is the only way their lines never interleave mid-line.
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + message.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line.append(message);
  line.push_back('\n');
  ssize_t ignored = ::write(STDERR_FILENO, line.data(), line.size());
  (void)ignored;
}

} // namespace detail
} // namespace kacc
