#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unistd.h>

namespace kacc {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("KACC_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

} // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // A single fprintf keeps lines whole across forked rank processes.
  std::fprintf(stderr, "[kacc %s pid=%d] %s\n", level_name(level),
               static_cast<int>(::getpid()), message.c_str());
}

} // namespace detail
} // namespace kacc
