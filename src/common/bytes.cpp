#include "common/bytes.h"

#include <cctype>
#include <cstdio>

#include "common/error.h"

namespace kacc {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr struct {
    std::uint64_t unit;
    char suffix;
  } kUnits[] = {
      {1ull << 30, 'G'},
      {1ull << 20, 'M'},
      {1ull << 10, 'K'},
  };
  for (const auto& u : kUnits) {
    if (bytes >= u.unit && bytes % u.unit == 0) {
      return std::to_string(bytes / u.unit) + u.suffix;
    }
  }
  return std::to_string(bytes);
}

std::uint64_t parse_bytes(const std::string& text) {
  if (text.empty()) {
    throw InvalidArgument("parse_bytes: empty string");
  }
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw InvalidArgument("parse_bytes: not a number: '" + text + "'");
  }
  std::uint64_t mult = 1;
  if (pos < text.size()) {
    if (pos + 1 != text.size()) {
      throw InvalidArgument("parse_bytes: trailing junk in '" + text + "'");
    }
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': mult = 1ull << 10; break;
      case 'M': mult = 1ull << 20; break;
      case 'G': mult = 1ull << 30; break;
      default:
        throw InvalidArgument("parse_bytes: unknown suffix in '" + text + "'");
    }
  }
  return value * mult;
}

std::vector<std::uint64_t> pow2_sizes(std::uint64_t lo, std::uint64_t hi) {
  KACC_CHECK_MSG(lo > 0 && lo <= hi, "pow2_sizes: require 0 < lo <= hi");
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; s *= 2) {
    out.push_back(s);
    if (s > hi / 2) {
      break; // avoid overflow on the doubling
    }
  }
  return out;
}

std::string format_us(double us) {
  char buf[64];
  if (us < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", us);
  } else if (us < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", us);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", us);
  }
  return buf;
}

} // namespace kacc
