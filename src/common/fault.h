// Deterministic fault injection for the native runtime, driven by the
// KACC_FAULT environment variable so any test or reproduction run can
// trigger a precise failure without a real crash.
//
// Syntax (rules separated by ';', fields by ','):
//   KACC_FAULT=rank:3,op:5,errno:EPERM     -- rank 3's 5th CMA op fails EPERM
//   KACC_FAULT=rank:1,op:2,action:exit     -- rank 1 calls _exit on its 2nd op
//   KACC_FAULT=rank:0,op:1,short:100       -- 1st op transfers at most 100 B
//                                             per syscall (partial-resume path)
//
// `op` counts CMA data-plane operations (cma_read/cma_write) per rank,
// 1-based. A rule fires exactly once (errno/exit) or from its op onward
// (short). Parsing is strict: malformed specs throw InvalidArgument so a
// typo'd injection never silently becomes a clean run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kacc {

struct FaultRule {
  enum class Action { kErrno, kExit, kShort };
  int rank = -1;           ///< rank the rule applies to
  std::uint64_t op = 0;    ///< 1-based CMA op index that triggers it
  Action action = Action::kErrno;
  int err = 0;             ///< errno value for kErrno
  std::size_t cap = 0;     ///< per-syscall byte cap for kShort
};

/// Per-process fault plan; cheap to copy, queried on every CMA op.
class FaultPlan {
public:
  FaultPlan() = default;

  /// Parses the KACC_FAULT syntax. Empty string -> empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Reads KACC_FAULT from the environment (empty plan when unset).
  static FaultPlan from_env();

  [[nodiscard]] bool empty() const { return rules_.empty(); }

  /// Returns the rule firing for (rank, 1-based op index), or nullptr.
  /// kErrno/kExit rules match exactly their op; kShort rules match every
  /// op >= theirs (a short-transfer regime, not a single event).
  [[nodiscard]] const FaultRule* match(int rank, std::uint64_t op) const;

  [[nodiscard]] const std::vector<FaultRule>& rules() const { return rules_; }

private:
  std::vector<FaultRule> rules_;
};

/// Maps a symbolic errno name ("EPERM") or decimal string to its value.
/// Throws InvalidArgument for unknown names.
int errno_from_name(const std::string& name);

} // namespace kacc
