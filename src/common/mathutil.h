// Small integer math helpers used across collective algorithms.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.h"

namespace kacc {

/// Greatest common divisor (Euclid). gcd(0, n) == n.
constexpr std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Ceiling division for non-negative integers; div must be > 0.
constexpr std::uint64_t ceil_div(std::uint64_t num, std::uint64_t div) {
  return (num + div - 1) / div;
}

/// True when v is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)); v must be > 0.
constexpr unsigned ilog2_floor(std::uint64_t v) {
  unsigned r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(v)); v must be > 0.
constexpr unsigned ilog2_ceil(std::uint64_t v) {
  return is_pow2(v) ? ilog2_floor(v) : ilog2_floor(v) + 1;
}

/// ceil(log_k(v)) for k >= 2, v >= 1. Number of rounds of a k-nomial tree
/// over v participants.
constexpr unsigned ilogk_ceil(std::uint64_t v, std::uint64_t k) {
  unsigned r = 0;
  std::uint64_t reach = 1;
  while (reach < v) {
    reach *= k;
    ++r;
  }
  return r;
}

/// Positive modulo: result in [0, m) even for negative a.
constexpr int pmod(int a, int m) {
  int r = a % m;
  return r < 0 ? r + m : r;
}

/// Rounds n up to the next multiple of align (align must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

} // namespace kacc
