// Page-aligned buffer for CMA transfers. The kernel path pins whole pages,
// so all benchmark/test buffers are page-aligned to make "number of pages"
// deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace kacc {

/// Owning, page-aligned, zero-initialized byte buffer (move-only).
class AlignedBuffer {
public:
  AlignedBuffer() = default;

  /// Allocates `size` bytes aligned to `alignment` (default: 4096).
  /// `zero_init=false` leaves the pages untouched (benchmark buffers that
  /// are never read stay virtual and cost no physical memory).
  explicit AlignedBuffer(std::size_t size, std::size_t alignment = 4096,
                         bool zero_init = true);

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<std::byte> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const std::byte> span() const noexcept {
    return {data_, size_};
  }

  /// Sets every byte to `value`.
  void fill(std::byte value) noexcept;

private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

} // namespace kacc
