// Minimal leveled logging. Collective benchmarks print their own tables;
// the logger is for diagnostics (native runtime setup, probe results, sim
// engine warnings). Controlled by KACC_LOG_LEVEL environment variable
// (error|warn|info|debug) or programmatically.
#pragma once

#include <sstream>
#include <string>

namespace kacc {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Returns the current global log level (initialized from KACC_LOG_LEVEL,
/// default warn).
LogLevel log_level();

/// Overrides the global log level.
void set_log_level(LogLevel level);

/// Tags this process's log lines with a rank (forked native ranks call this
/// once after fork). Lines read "... pid=1234 rank=2] ..."; unset (< 0, the
/// default) omits the rank field.
void log_set_rank(int rank);

/// Rate limiter for repetitive diagnostics (spin-wait warnings, drift
/// alarms, fallback chatter): returns true at most once per `interval_ms`
/// per `key`, measured on the monotonic clock. Keys are interned in a
/// process-local table, so pass stable short strings.
bool log_should_emit(const char* key, double interval_ms);

namespace detail {
/// Formats "[kacc <ts> LEVEL pid=<pid>[ rank=<r>]] <message>\n" into one
/// buffer and hands it to a single write(2), so lines from forked rank
/// processes never interleave mid-line.
void log_emit(LogLevel level, const std::string& message);
} // namespace detail

} // namespace kacc

#define KACC_LOG(level, stream_expr)                                          \
  do {                                                                        \
    if (static_cast<int>(level) <= static_cast<int>(::kacc::log_level())) {   \
      std::ostringstream kacc_log_os_;                                        \
      kacc_log_os_ << stream_expr;                                            \
      ::kacc::detail::log_emit((level), kacc_log_os_.str());                  \
    }                                                                         \
  } while (0)

#define KACC_LOG_ERROR(s) KACC_LOG(::kacc::LogLevel::kError, s)
#define KACC_LOG_WARN(s) KACC_LOG(::kacc::LogLevel::kWarn, s)
#define KACC_LOG_INFO(s) KACC_LOG(::kacc::LogLevel::kInfo, s)
#define KACC_LOG_DEBUG(s) KACC_LOG(::kacc::LogLevel::kDebug, s)

/// Warn at most once per interval_ms per key — for hot paths that would
/// otherwise flood stderr (spin slow-waits, repeated drift alarms). The
/// level check runs first so a suppressed level never touches the limiter.
#define KACC_LOG_WARN_RL(key, interval_ms, s)                                 \
  do {                                                                        \
    if (static_cast<int>(::kacc::LogLevel::kWarn) <=                          \
            static_cast<int>(::kacc::log_level()) &&                          \
        ::kacc::log_should_emit((key), (interval_ms))) {                      \
      std::ostringstream kacc_log_os_;                                        \
      kacc_log_os_ << s;                                                      \
      ::kacc::detail::log_emit(::kacc::LogLevel::kWarn,                       \
                               kacc_log_os_.str());                           \
    }                                                                         \
  } while (0)
