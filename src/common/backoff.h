// Bounded exponential backoff with deterministic jitter for transient-error
// retry loops (EINTR/EAGAIN on CMA syscalls, full/empty ChunkPipe rings).
// A Backoff separates the two costs a retry loop can pay — spinning (burns
// the core, fastest reaction) and sleeping (frees the core, bounded by the
// exponential schedule) — and budgets both against a Deadline so a sticky
// condition escalates instead of looping forever.
//
// Jitter is a deterministic xorshift64 stream seeded by the caller (rank,
// typically), never wall-clock: replaying a KACC_FAULT scenario must take
// the same retry path every run.
#pragma once

#include <ctime>
#include <cstdint>

#include "common/deadline.h"

namespace kacc {

struct BackoffPolicy {
  /// Retries served hot (no sleep, no yield) before the first sleep.
  std::uint32_t hot_tries = 16;
  /// First sleep duration; doubles per sleep up to max_us.
  std::uint32_t base_us = 1;
  /// Ceiling on a single sleep.
  std::uint32_t max_us = 200;
  /// Total sleeps allowed before the backoff reports exhaustion.
  /// 0 = unbounded (only the Deadline stops it).
  std::uint64_t max_sleeps = 0;
};

class Backoff {
public:
  explicit Backoff(BackoffPolicy policy = {}, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed != 0 ? seed : 1) {}

  /// One retry attempt. Returns false when the budget is exhausted (the
  /// deadline expired or max_sleeps was reached) — the caller escalates.
  /// Returns true after consuming the attempt: the first hot_tries return
  /// immediately, later attempts nanosleep a jittered exponential delay
  /// clamped to the deadline's remaining budget.
  bool step(const Deadline& dl = Deadline::never()) {
    if (dl.expired()) {
      return false;
    }
    if (attempts_++ < policy_.hot_tries) {
      return true;
    }
    if (policy_.max_sleeps != 0 && sleeps_ >= policy_.max_sleeps) {
      return false;
    }
    const std::uint32_t shift =
        exp_ < 31 ? static_cast<std::uint32_t>(exp_) : 31;
    std::uint64_t delay = static_cast<std::uint64_t>(policy_.base_us) << shift;
    if (delay > policy_.max_us) {
      delay = policy_.max_us;
    }
    // Jitter into [delay/2, delay] so retry storms decorrelate.
    if (delay > 1) {
      delay = delay / 2 + next_rand() % (delay / 2 + 1);
    }
    const double remaining = dl.remaining_us();
    if (static_cast<double>(delay) > remaining) {
      delay = static_cast<std::uint64_t>(remaining);
    }
    if (delay > 0) {
      struct timespec nap {
        static_cast<time_t>(delay / 1'000'000),
        static_cast<long>((delay % 1'000'000) * 1'000)
      };
      ::nanosleep(&nap, nullptr);
    }
    ++sleeps_;
    ++exp_;
    return true;
  }

  /// Forgets accumulated escalation (call when the protected operation
  /// makes progress); the sleep tally survives for accounting.
  void reset() { attempts_ = 0; exp_ = 0; }

  /// Sleeps taken since construction (monotone; reset() keeps it).
  [[nodiscard]] std::uint64_t sleeps() const { return sleeps_; }

private:
  std::uint64_t next_rand() {
    std::uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    return x;
  }

  BackoffPolicy policy_;
  std::uint64_t rng_;
  std::uint64_t attempts_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t exp_ = 0;
};

} // namespace kacc
