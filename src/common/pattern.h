// Deterministic data patterns for verifying collective correctness.
//
// Every (rank, block, byte-offset) triple maps to one byte value, so after a
// collective each receiver can verify exactly which source block landed where
// without shipping reference data around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace kacc {

/// Byte value expected at `offset` of the block that rank `src` sends as its
/// `block`-th block. Mixes all three inputs so misplaced blocks are caught.
std::uint8_t pattern_byte(int src, int block, std::size_t offset) noexcept;

/// Fills `buf` with the pattern for (src, block).
void pattern_fill(std::span<std::byte> buf, int src, int block) noexcept;

/// Returns the offset of the first mismatching byte, or -1 when `buf`
/// matches the pattern for (src, block) exactly.
std::ptrdiff_t pattern_find_mismatch(std::span<const std::byte> buf, int src,
                                     int block) noexcept;

/// Convenience: true when the whole buffer matches.
bool pattern_check(std::span<const std::byte> buf, int src, int block) noexcept;

/// Human-readable description of a mismatch for test failure messages.
std::string pattern_describe_mismatch(std::span<const std::byte> buf, int src,
                                      int block);

} // namespace kacc
