#include "common/error.h"

#include <sstream>

namespace kacc::detail {

[[noreturn]] void throw_check_failed(const char* expr, const char* file,
                                     unsigned line, const std::string& msg) {
  std::ostringstream os;
  os << "KACC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InternalError(os.str());
}

[[noreturn]] void throw_syscall_failed(const char* expr, const char* file,
                                       unsigned line, int err) {
  std::ostringstream os;
  os << "syscall failed: (" << expr << ") at " << file << ":" << line;
  throw SyscallError(os.str(), err);
}

} // namespace kacc::detail
