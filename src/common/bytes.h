// Human-readable byte-size formatting/parsing for benchmark tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kacc {

/// Formats a byte count the way the paper labels its x axes:
/// 1024 -> "1K", 4194304 -> "4M", 512 -> "512".
std::string format_bytes(std::uint64_t bytes);

/// Parses "4K", "1M", "64", "2G" (case-insensitive suffix). Throws
/// InvalidArgument on malformed input.
std::uint64_t parse_bytes(const std::string& text);

/// Standard power-of-two message-size sweep [lo, hi] inclusive, doubling.
std::vector<std::uint64_t> pow2_sizes(std::uint64_t lo, std::uint64_t hi);

/// Formats a latency in microseconds with sensible precision for tables.
std::string format_us(double us);

} // namespace kacc
