#include "common/pattern.h"

#include <sstream>

namespace kacc {

std::uint8_t pattern_byte(int src, int block, std::size_t offset) noexcept {
  // splitmix-style mixing keeps each (src, block, offset) distinguishable
  // while staying cheap enough to fill multi-megabyte buffers in tests.
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 40) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(block))
                     << 20) ^
                    static_cast<std::uint64_t>(offset);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return static_cast<std::uint8_t>(x & 0xff);
}

void pattern_fill(std::span<std::byte> buf, int src, int block) noexcept {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(pattern_byte(src, block, i));
  }
}

std::ptrdiff_t pattern_find_mismatch(std::span<const std::byte> buf, int src,
                                     int block) noexcept {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != static_cast<std::byte>(pattern_byte(src, block, i))) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

bool pattern_check(std::span<const std::byte> buf, int src,
                   int block) noexcept {
  return pattern_find_mismatch(buf, src, block) == -1;
}

std::string pattern_describe_mismatch(std::span<const std::byte> buf, int src,
                                      int block) {
  std::ptrdiff_t at = pattern_find_mismatch(buf, src, block);
  if (at < 0) {
    return "no mismatch";
  }
  std::ostringstream os;
  os << "mismatch for (src=" << src << ", block=" << block << ") at offset "
     << at << ": got 0x" << std::hex
     << static_cast<int>(std::to_integer<std::uint8_t>(
            buf[static_cast<std::size_t>(at)]))
     << " want 0x"
     << static_cast<int>(pattern_byte(src, block, static_cast<std::size_t>(at)));
  return os.str();
}

} // namespace kacc
