// Umbrella header for the kacc public API.
//
// kacc — Kernel-Assisted Contention-aware Collectives — reproduces
// "Contention-Aware Kernel-Assisted MPI Collectives for Multi-/Many-core
// Systems" (Chakraborty, Subramoni, Panda; IEEE CLUSTER 2017).
//
// Typical use:
//
//   #include "kacc.h"
//   using namespace kacc;
//
//   run_sim(knl(), 64, [](Comm& comm) {
//     AlignedBuffer buf(1 << 20);
//     coll::bcast(comm, buf.data(), buf.size(), /*root=*/0);
//   });
//
// or natively (real fork + process_vm_readv), gated on cma::available():
//
//   run_native_team(detect_host(), 8, [](Comm& comm) { ... });
#pragma once

#include "coll/algo.h"
#include "coll/allgather.h"
#include "coll/alltoall.h"
#include "coll/bcast.h"
#include "coll/gather.h"
#include "coll/reduce.h"
#include "coll/scatter.h"
#include "coll/tuner.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/pattern.h"
#include "baseline/library.h"
#include "cma/probe.h"
#include "model/cost_model.h"
#include "model/estimator.h"
#include "model/predict.h"
#include "net/two_level.h"
#include "runtime/comm.h"
#include "runtime/process_team.h"
#include "runtime/sim_comm.h"
#include "topo/detect.h"
#include "topo/presets.h"
