// Inter-node fabric model for the multi-node experiments (Fig 17). The
// paper's testbeds used InfiniBand EDR / Omni-Path; we model the network
// as latency + bandwidth per message (LogGP without the gap terms, which
// the paper's gather traffic pattern does not exercise).
#pragma once

#include <cstdint>

#include "topo/arch_spec.h"

namespace kacc::net {

class FabricModel {
public:
  FabricModel(double latency_us, double bw_bytes_per_us);

  /// Builds the fabric of an architecture preset.
  explicit FabricModel(const ArchSpec& spec);

  /// Time for one n-byte message between two nodes, including the
  /// rendezvous control round trips (RTS/CTS/FIN) and receive-side
  /// processing a large-message MPI transfer pays per message.
  [[nodiscard]] double xfer_us(std::uint64_t bytes) const;

  /// The per-message rendezvous/processing overhead alone.
  [[nodiscard]] double rendezvous_overhead_us() const;

  /// Time for `count` back-to-back messages into one NIC (serialized).
  [[nodiscard]] double serialized_us(std::uint64_t bytes_each,
                                     int count) const;

  [[nodiscard]] double latency_us() const { return latency_us_; }
  [[nodiscard]] double bandwidth_Bus() const { return bw_Bus_; }

private:
  double latency_us_;
  double bw_Bus_;
};

} // namespace kacc::net
