#include "net/two_level.h"

#include <algorithm>

#include "coll/tuner.h"
#include "common/error.h"
#include "model/cost_model.h"
#include "model/predict.h"

namespace kacc::net {
namespace {

void check_shape(const MultiNodeShape& shape) {
  KACC_CHECK_MSG(shape.nodes >= 1 && shape.ranks_per_node >= 1,
                 "MultiNodeShape: positive nodes and ranks_per_node");
}

/// Intra-node cost of one pt2pt message under the flat baseline.
double intra_msg_us(const ArchSpec& spec, std::uint64_t eta, IntraKind kind) {
  const CostModel m(spec);
  switch (kind) {
    case IntraKind::kShmTwoCopy:
      return m.shm_two_copy_cost_us(eta);
    case IntraKind::kCmaPt2pt:
      // RTS + FIN handshake around one uncontended single-copy.
      return m.cma_cost_us(eta, 1) + 2.0 * spec.shm_signal_us;
  }
  return 0.0;
}

} // namespace

double flat_gather_us(const ArchSpec& spec, const MultiNodeShape& shape,
                      std::uint64_t eta, IntraKind intra) {
  check_shape(shape);
  const FabricModel fabric(spec);
  // The single root drains every message itself: rpn-1 local ones via the
  // intra-node path and (nodes-1)*rpn remote ones via the NIC, one at a
  // time (the single-threaded progress engine of a flat gather).
  const int remote_msgs = (shape.nodes - 1) * shape.ranks_per_node;
  const double remote = fabric.serialized_us(eta, remote_msgs);
  const double local =
      static_cast<double>(shape.ranks_per_node - 1) *
      intra_msg_us(spec, eta, intra);
  return remote + local;
}

TwoLevelBreakdown two_level_gather_breakdown(const ArchSpec& spec,
                                             const MultiNodeShape& shape,
                                             std::uint64_t eta) {
  check_shape(shape);
  const FabricModel fabric(spec);
  TwoLevelBreakdown b;
  // Phase 1: every node runs the tuned intra-node gather concurrently.
  // The Tuner sweep covers the hierarchical (socket two-level) candidates
  // too, so on multi-socket specs this term already reflects the best
  // composed design, not just the flat algorithms.
  b.intra_us = coll::Tuner().gather(spec, shape.ranks_per_node, eta)
                   .predicted_us;
  // Phase 2: nodes-1 leaders each push rpn*eta to the global root,
  // serialized into the root's NIC.
  const std::uint64_t node_block =
      eta * static_cast<std::uint64_t>(shape.ranks_per_node);
  b.inter_us = fabric.serialized_us(node_block, shape.nodes - 1);
  return b;
}

TwoLevelBreakdown two_level_scatter_breakdown(const ArchSpec& spec,
                                              const MultiNodeShape& shape,
                                              std::uint64_t eta) {
  check_shape(shape);
  const FabricModel fabric(spec);
  TwoLevelBreakdown b;
  const std::uint64_t node_block =
      eta * static_cast<std::uint64_t>(shape.ranks_per_node);
  b.inter_us = fabric.serialized_us(node_block, shape.nodes - 1);
  b.intra_us = coll::Tuner().scatter(spec, shape.ranks_per_node, eta)
                   .predicted_us;
  return b;
}

double two_level_gather_us(const ArchSpec& spec, const MultiNodeShape& shape,
                           std::uint64_t eta) {
  return two_level_gather_breakdown(spec, shape, eta).total_us();
}

double two_level_gather_pipelined_us(const ArchSpec& spec,
                                     const MultiNodeShape& shape,
                                     std::uint64_t eta, int chunks) {
  check_shape(shape);
  KACC_CHECK_MSG(chunks >= 1, "pipelined gather: chunks >= 1");
  const FabricModel fabric(spec);
  const std::uint64_t chunk_eta =
      (eta + static_cast<std::uint64_t>(chunks) - 1) /
      static_cast<std::uint64_t>(chunks);
  const double intra_chunk =
      coll::Tuner().gather(spec, shape.ranks_per_node, chunk_eta).predicted_us;
  const std::uint64_t node_chunk =
      chunk_eta * static_cast<std::uint64_t>(shape.ranks_per_node);
  const double inter_chunk =
      fabric.serialized_us(node_chunk, shape.nodes - 1);
  // Chunk pipeline: fill with the first intra phase, then the steady state
  // is paced by the slower of the two stages.
  return intra_chunk +
         static_cast<double>(chunks) * std::max(intra_chunk, inter_chunk);
}

double flat_scatter_us(const ArchSpec& spec, const MultiNodeShape& shape,
                       std::uint64_t eta, IntraKind intra) {
  // Symmetric traffic pattern: same model as the flat gather.
  return flat_gather_us(spec, shape, eta, intra);
}

double two_level_scatter_us(const ArchSpec& spec, const MultiNodeShape& shape,
                            std::uint64_t eta) {
  return two_level_scatter_breakdown(spec, shape, eta).total_us();
}

} // namespace kacc::net
