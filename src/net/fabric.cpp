#include "net/fabric.h"

#include "common/error.h"

namespace kacc::net {

FabricModel::FabricModel(double latency_us, double bw_bytes_per_us)
    : latency_us_(latency_us), bw_Bus_(bw_bytes_per_us) {
  KACC_CHECK_MSG(latency_us >= 0.0 && bw_bytes_per_us > 0.0,
                 "FabricModel: latency >= 0, bandwidth > 0");
}

FabricModel::FabricModel(const ArchSpec& spec)
    : FabricModel(spec.net_latency_us, spec.net_bw_Bus) {}

double FabricModel::rendezvous_overhead_us() const {
  // Two control round trips (RTS -> CTS, data -> FIN) plus host-side
  // matching and DMA setup.
  return 4.0 * latency_us_ + 5.0;
}

double FabricModel::xfer_us(std::uint64_t bytes) const {
  return latency_us_ + rendezvous_overhead_us() +
         static_cast<double>(bytes) / bw_Bus_;
}

double FabricModel::serialized_us(std::uint64_t bytes_each, int count) const {
  if (count <= 0) {
    return 0.0;
  }
  return static_cast<double>(count) * xfer_us(bytes_each);
}

} // namespace kacc::net
