// Multi-node Gather/Scatter composition (paper §VII-G, Fig 17): flat
// single-level algorithms (what existing libraries use for large messages)
// versus the paper's two-level design — node leaders run the tuned
// intra-node collective, then a single inter-node exchange per node.
//
// Modeled analytically over the FabricModel + the intra-node cost model;
// the intra-node term uses the same predict functions the Tuner minimizes.
#pragma once

#include <cstdint>

#include "net/fabric.h"
#include "topo/arch_spec.h"

namespace kacc::net {

/// How the flat (single-level) baseline moves its intra-node messages.
enum class IntraKind {
  kShmTwoCopy, ///< two-copy shared memory (MVAPICH2-style)
  kCmaPt2pt,   ///< point-to-point CMA with RTS/CTS handshakes
};

struct MultiNodeShape {
  int nodes = 1;
  int ranks_per_node = 1;

  [[nodiscard]] int total_ranks() const { return nodes * ranks_per_node; }
};

/// Flat gather: the global root receives total-1 individual messages —
/// remote ones over the fabric (serialized into one NIC), local ones via
/// `intra` point-to-point transfers.
double flat_gather_us(const ArchSpec& spec, const MultiNodeShape& shape,
                      std::uint64_t eta, IntraKind intra);

/// The two phases of a two-level composition, separately. The intra term
/// is the Tuner's minimum over every intra-node candidate — including,
/// since the hierarchical sweep landed, the socket-level two-level
/// compositions themselves — and is therefore directly comparable to an
/// executed simulation of the same tuned collective (bench/fig17
/// --executed). The inter term stays analytic: the fabric is modeled, not
/// simulated.
struct TwoLevelBreakdown {
  double intra_us = 0.0; ///< tuned intra-node phase, every node in parallel
  double inter_us = 0.0; ///< leader blocks serialized into the root's NIC

  [[nodiscard]] double total_us() const { return intra_us + inter_us; }
};

TwoLevelBreakdown two_level_gather_breakdown(const ArchSpec& spec,
                                             const MultiNodeShape& shape,
                                             std::uint64_t eta);
TwoLevelBreakdown two_level_scatter_breakdown(const ArchSpec& spec,
                                              const MultiNodeShape& shape,
                                              std::uint64_t eta);

/// Two-level gather: tuned intra-node gather on every node in parallel,
/// then node leaders send their aggregated block to the global root.
double two_level_gather_us(const ArchSpec& spec, const MultiNodeShape& shape,
                           std::uint64_t eta);

/// Pipelined two-level gather (the paper's "more advanced designs"
/// extension): the intra-node gather is chunked so inter-node transfers
/// overlap with intra-node collection.
double two_level_gather_pipelined_us(const ArchSpec& spec,
                                     const MultiNodeShape& shape,
                                     std::uint64_t eta, int chunks);

/// Flat and two-level scatter (mirror of gather).
double flat_scatter_us(const ArchSpec& spec, const MultiNodeShape& shape,
                       std::uint64_t eta, IntraKind intra);
double two_level_scatter_us(const ArchSpec& spec, const MultiNodeShape& shape,
                            std::uint64_t eta);

} // namespace kacc::net
