// Multi-tenant makespan trajectory: two co-scheduled teams of equal size
// drive governed same-root broadcast streams on one simulated node, with
// the cross-team arbiter (kacc::node) on and off. Oblivious teams each run
// at their solo-optimal per-source admission cap, so the node over-admits
// and the shared memory system stretches every stream; arbitrated teams
// run at the leased aggregate-optimal caps. Deterministic (virtual clock),
// so the committed BENCH_multitenant.json snapshot gates regressions in
// CI via tools/compare_bench.py.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/error.h"
#include "nbc/nbc.h"
#include "node/launch.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

constexpr std::uint64_t kChunk = 64 * 1024;
constexpr std::size_t kBytes = 1 << 20;
constexpr int kIters = 2;

/// Two tenants, `per_team` ranks each, every tenant looping two concurrent
/// governed direct-read broadcasts — the fan-in pattern the per-team
/// governor caps, and the aggregate of those caps is what the arbiter
/// corrects.
double node_makespan_us(const ArchSpec& spec, int per_team, bool arbitrate) {
  std::vector<node::NodeTenant> tenants(2);
  for (int t = 0; t < 2; ++t) {
    auto& ten = tenants[static_cast<std::size_t>(t)];
    ten.name = "t" + std::to_string(t);
    ten.nranks = per_team;
    ten.body = [](node::TenantSession& s) {
      std::vector<std::byte> a(kBytes);
      std::vector<std::byte> b(kBytes);
      nbc::Options nopts;
      nopts.chunk_bytes = kChunk;
      for (int i = 0; i < kIters; ++i) {
        nbc::Request reqs[2] = {
            nbc::ibcast(s.comm(), a.data(), kBytes, 0,
                        coll::BcastAlgo::kDirectRead, {}, nopts),
            nbc::ibcast(s.comm(), b.data(), kBytes, 0,
                        coll::BcastAlgo::kDirectRead, {}, nopts),
        };
        nbc::wait_all(reqs);
      }
    };
  }
  node::NodeOptions opts;
  opts.arbitrate = arbitrate;
  opts.chunk_bytes = kChunk;
  opts.move_data = false;
  const node::NodeRunResult res = node::run_sim_node(spec, tenants, opts);
  if (!res.all_ok()) {
    throw Error("multitenant bench: a simulated rank failed");
  }
  return res.makespan_us;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Two-tenant arbitrated vs oblivious node makespan",
                "kacc::node trajectory (not a paper figure)");
  for (const char* arch : {"knl", "broadwell"}) {
    const ArchSpec spec = preset_by_name(arch);
    bench::Table t(spec.name +
                       " — 2 teams x p ranks, two 1 MiB governed bcast "
                       "streams each",
                   {"ranks/team", "oblivious", "arbitrated", "speedup"});
    for (int p : {8, 12, 16}) {
      const double oblivious = node_makespan_us(spec, p, false);
      const double arbitrated = node_makespan_us(spec, p, true);
      // The series key "size" carries the per-team rank count — the
      // trajectory format only needs a monotone x-axis.
      bench::record_point(spec.name, "multitenant/oblivious",
                          static_cast<std::uint64_t>(p), oblivious);
      bench::record_point(spec.name, "multitenant/arbitrated",
                          static_cast<std::uint64_t>(p), arbitrated);
      t.add_row({std::to_string(p), format_us(oblivious),
                 format_us(arbitrated),
                 bench::format_speedup(oblivious / arbitrated)});
    }
    t.print();
  }
  return 0;
}
