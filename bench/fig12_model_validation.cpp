// Fig 12: model validation — predicted ("Modeled") vs simulated ("Actual")
// latency of three Broadcast designs: (1) direct read, (2) direct write,
// (3) scatter-allgather. Validating scatter-allgather indirectly validates
// the Scatter and Allgather models too (paper §VI).
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "model/predict.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Model validation: predicted vs simulated Bcast latency",
                "Fig 12 (a)-(b)");
  const ArchSpec archs[] = {knl(), broadwell()};
  struct Variant {
    const char* name;
    AlgoRun run;
    double (*predict_fn)(const ArchSpec&, int, std::uint64_t);
  };
  const Variant variants[] = {
      {"DirectRead", AlgoRun::bcast_algo(coll::BcastAlgo::kDirectRead),
       predict::bcast_direct_read},
      {"DirectWrite", AlgoRun::bcast_algo(coll::BcastAlgo::kDirectWrite),
       predict::bcast_direct_write},
      {"ScatterAllgather",
       AlgoRun::bcast_algo(coll::BcastAlgo::kScatterAllgather),
       predict::bcast_scatter_allgather},
  };

  for (const ArchSpec& spec : archs) {
    const int p = spec.default_ranks;
    double worst_err = 0.0;
    for (const Variant& v : variants) {
      bench::Table t(spec.name + ", " + std::to_string(p) + " processes — " +
                         v.name + ": Actual (sim) vs Modeled",
                     {"size", "actual us", "modeled us", "error"});
      for (std::uint64_t bytes :
           bench::size_sweep(4096, 4u << 20, p, false)) {
        const double actual = bench::measure_us(spec, p, v.run, bytes);
        const double modeled = v.predict_fn(spec, p, bytes);
        const double err = std::abs(modeled - actual) / actual;
        worst_err = std::max(worst_err, err);
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%.1f%%", err * 100.0);
        t.add_row({format_bytes(bytes), format_us(actual), format_us(modeled),
                   pct});
      }
      t.print();
    }
    if (!bench::json_mode()) {
      std::printf("%s worst relative error: %.1f%%\n", spec.name.c_str(),
                  worst_err * 100.0);
    }
  }
  return 0;
}
