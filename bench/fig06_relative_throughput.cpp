// Fig 6: aggregate CMA read throughput of c concurrent readers of one
// source, relative to a single reader, per message size. Exposes the
// architecture-dependent concurrency sweet spot the throttled algorithms
// exploit.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

double one_to_all_us(const ArchSpec& spec, int readers, std::uint64_t bytes) {
  return run_sim_ex(
             spec, readers + 1,
             [&](SimComm& comm) {
               if (comm.rank() > 0) {
                 comm.timed_cma(0, bytes, true);
               }
             },
             /*move_data=*/false)
      .makespan_us;
}

double rel_throughput(const ArchSpec& spec, int readers, std::uint64_t bytes) {
  const double solo = one_to_all_us(spec, 1, bytes);
  const double crowd = one_to_all_us(spec, readers, bytes);
  return (static_cast<double>(readers) * solo) / crowd;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner(
      "Relative one-to-all read throughput (vs single reader) per size",
      "Fig 6 (a)-(c)");
  const auto sizes = pow2_sizes(4096, 4u << 20);
  for (const ArchSpec& spec : all_presets()) {
    std::vector<int> readers;
    for (int c = 1; c < spec.default_ranks; c *= 2) {
      readers.push_back(c);
    }
    readers.push_back(spec.default_ranks - 1);

    std::vector<std::string> cols = {"size"};
    for (int c : readers) {
      cols.push_back(std::to_string(c) + "r");
    }
    bench::Table t(spec.name + " — aggregate throughput relative to 1 reader",
                   cols);
    for (std::uint64_t bytes : sizes) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (int c : readers) {
        const double rel = rel_throughput(spec, c, bytes);
        bench::record_point(spec.name, std::to_string(c) + " readers", bytes,
                            rel);
        row.push_back(format_us(rel));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nNote: the per-size maximum concurrency is the throttled "
               "algorithms' sweet spot\n(KNL ~8, Broadwell ~4, POWER8 ~10 = "
               "one socket).\n";
  return 0;
}
