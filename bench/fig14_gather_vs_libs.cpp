// Gather vs state-of-the-art libraries — the tuned kacc design ("Proposed") against the three
// baseline library stand-ins. Library names carry a * because they are
// behavioural stand-ins, not the closed-source originals (DESIGN.md §2).
#include "bench_util.h"
#include "topo/presets.h"
#include "vs_libs_common.h"

using namespace kacc;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Gather vs state-of-the-art libraries", "Fig 14 (a)-(c)");
  for (const ArchSpec& spec : all_presets()) {
    // Intel MPI was not available on the paper's OpenPOWER system.
    const std::vector<int> libs =
        spec.name == "Power8" ? std::vector<int>{0, 2}
                              : std::vector<int>{0, 1, 2};
    bench::vs_libs_table(spec, bench::Coll::kGather, 1024, 16u << 20, false, libs);
  }
  return 0;
}
