// Recovery-latency trajectory: virtual time a survivor team spends healing
// after a fail-stop peer death, by team size. One simulated rank is killed
// mid-bcast; the survivors agree, shrink, and serve one more collective.
// Deterministic (the simulator's virtual clock), so the committed
// BENCH_fault_recovery.json snapshot gates regressions in CI via
// tools/compare_bench.py.
#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "bench_util.h"
#include "coll/bcast.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "common/error.h"
#include "runtime/sim_comm.h"
#include "sim/fault.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

struct RecoveryPoint {
  double shrink_us = 0.0;      ///< max survivor detect->committed-shrink
  double first_coll_us = 0.0;  ///< max survivor first post-shrink bcast
};

/// Kills rank p/2 during a bcast loop and reports the slowest survivor's
/// recovery and first-collective latencies (virtual microseconds).
RecoveryPoint measure_recovery(const ArchSpec& spec, int p) {
  RecoveryPoint point;
  std::mutex mu;
  sim::FaultInjector faults;
  faults.kill_rank(p / 2, 40.0);
  const SimFaultResult res =
      run_sim_fault(spec, p, faults, [&](Comm& comm) {
        AlignedBuffer buf(64 * 1024);
        std::unique_ptr<Comm> owned;
        try {
          for (int i = 0; i < 500; ++i) {
            coll::bcast(comm, buf.data(), buf.size(), 0,
                        coll::BcastAlgo::kDirectRead);
          }
        } catch (const PeerDiedError&) {
          const double t0 = comm.now_us();
          owned = comm.shrink();
          const double t1 = comm.now_us();
          coll::bcast(*owned, buf.data(), buf.size(), 0,
                      coll::BcastAlgo::kDirectRead);
          const double t2 = owned->now_us();
          const std::lock_guard<std::mutex> lock(mu);
          point.shrink_us = std::max(point.shrink_us, t1 - t0);
          point.first_coll_us = std::max(point.first_coll_us, t2 - t1);
        }
        if (owned == nullptr) {
          throw Error("kill landed outside the loop: raise the iteration "
                      "count");
        }
      });
  for (int r = 0; r < p; ++r) {
    if (r == p / 2) {
      continue;
    }
    if (res.outcomes[static_cast<std::size_t>(r)].kind !=
        sim::RankOutcome::Kind::kOk) {
      throw Error("survivor rank " + std::to_string(r) + " failed: " +
                  res.outcomes[static_cast<std::size_t>(r)].message);
    }
  }
  return point;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Fail-stop recovery latency by team size",
                "robustness trajectory (not a paper figure)");
  const ArchSpec spec = broadwell();
  bench::Table t(spec.name + " — one mid-bcast kill, survivors shrink",
                 {"ranks", "agree+shrink", "first collective"});
  for (int p : {4, 8, 12, 16, 24, 32}) {
    const RecoveryPoint point = measure_recovery(spec, p);
    // The series key "size" carries the team size (not bytes) — the
    // trajectory format only needs a monotone x-axis.
    bench::record_point(spec.name, "recovery/shrink",
                        static_cast<std::uint64_t>(p), point.shrink_us);
    bench::record_point(spec.name, "recovery/first-collective",
                        static_cast<std::uint64_t>(p), point.first_coll_us);
    t.add_row({std::to_string(p), format_us(point.shrink_us),
               format_us(point.first_coll_us)});
  }
  t.print();
  return 0;
}
