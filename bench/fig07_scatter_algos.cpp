// Fig 7: Scatter algorithm comparison — parallel read, sequential write and
// throttled reads at several throttle factors, per architecture.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Scatter algorithms: parallel / sequential / throttled-k",
                "Fig 7 (a)-(c)");
  struct ArchCase {
    ArchSpec spec;
    std::vector<int> throttles;
  };
  const ArchCase cases[] = {
      {knl(), {2, 4, 8, 16}},
      {broadwell(), {2, 4, 7, 14}},
      {power8(), {2, 4, 10, 20}},
  };
  for (const ArchCase& c : cases) {
    const int p = c.spec.default_ranks;
    std::vector<std::pair<std::string, AlgoRun>> series;
    for (int k : c.throttles) {
      series.emplace_back(
          "Throttle=" + std::to_string(k),
          AlgoRun::scatter_algo(coll::ScatterAlgo::kThrottledRead, k));
    }
    series.emplace_back("ParallelRead",
                        AlgoRun::scatter_algo(coll::ScatterAlgo::kParallelRead));
    series.emplace_back(
        "SequentialWrite",
        AlgoRun::scatter_algo(coll::ScatterAlgo::kSequentialWrite));

    std::vector<std::string> cols = {"size"};
    for (const auto& [name, run] : series) {
      cols.push_back(name);
    }
    bench::Table t(c.spec.name + ", " + std::to_string(p) +
                       " processes — Scatter latency (us)",
                   cols);
    for (std::uint64_t bytes : bench::size_sweep(1024, 16u << 20, p, false)) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& [name, run] : series) {
        row.push_back(format_us(bench::measure_us(c.spec, p, run, bytes)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
