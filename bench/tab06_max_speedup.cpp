// Table VI: maximum speedup of the proposed (tuned) designs over each
// state-of-the-art library stand-in, per collective and architecture,
// across the message-size sweep.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"
#include "vs_libs_common.h"

using namespace kacc;
using bench::AlgoRun;
using bench::Coll;

namespace {

struct Sweep {
  Coll coll;
  std::uint64_t lo;
  std::uint64_t hi;
  bool quadratic;
};

const Sweep kSweeps[] = {
    {Coll::kBcast, 1024, 16u << 20, false},
    {Coll::kScatter, 1024, 16u << 20, false},
    {Coll::kGather, 1024, 16u << 20, false},
    {Coll::kAllgather, 1024, 1u << 20, true},
    {Coll::kAlltoall, 1024, 1u << 20, true},
};

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner(
      "Maximum speedup of the proposed designs vs each library stand-in",
      "Table VI");
  for (const ArchSpec& spec : all_presets()) {
    const int p = spec.default_ranks;
    const std::vector<int> libs =
        spec.name == "Power8" ? std::vector<int>{0, 2}
                              : std::vector<int>{0, 1, 2};
    std::vector<std::string> cols = {"collective"};
    for (int lib : libs) {
      cols.push_back(bench::kLibNames[lib]);
    }
    bench::Table t(spec.name + ", " + std::to_string(p) +
                       " processes — max speedup over the size sweep",
                   cols);
    for (const Sweep& sw : kSweeps) {
      AlgoRun proposed;
      proposed.coll = sw.coll;
      std::vector<double> best(libs.size(), 0.0);
      for (std::uint64_t bytes :
           bench::size_sweep(sw.lo, sw.hi, p, sw.quadratic)) {
        const double ours = bench::measure_us(spec, p, proposed, bytes);
        for (std::size_t i = 0; i < libs.size(); ++i) {
          const double b = bench::measure_us(
              spec, p, AlgoRun::baseline(sw.coll, libs[i]), bytes);
          best[i] = std::max(best[i], b / ours);
        }
      }
      std::vector<std::string> row = {bench::coll_name(sw.coll)};
      for (double s : best) {
        row.push_back(bench::format_speedup(s));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nPaper reference (Table VI): personalized collectives up to "
               "~50x,\nnon-personalized up to ~5x, depending on architecture "
               "and library.\n";
  return 0;
}
