// Substrate microbenchmarks (google-benchmark): the real shared-memory
// primitives, the simulation engine's event throughput, the NLLS solver,
// and the native CMA path where available.
#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>
#include <vector>

#include "cma/endpoint.h"
#include "cma/probe.h"
#include "cma/step_probe.h"
#include "common/buffer.h"
#include "common/pattern.h"
#include "coll/bcast.h"
#include "model/estimator.h"
#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/trace.h"
#include "model/gamma.h"
#include "model/nlls.h"
#include "runtime/sim_comm.h"
#include "shm/arena.h"
#include "shm/barrier.h"
#include "shm/chunk_pipe.h"
#include "shm/ctrl_coll.h"
#include "shm/mailbox.h"
#include "topo/presets.h"

namespace {

using namespace kacc;

void BM_PatternFill(benchmark::State& state) {
  AlignedBuffer buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pattern_fill(buf.span(), 3, 7);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PatternFill)->Arg(4096)->Arg(1 << 20);

void BM_ShmSignalRoundTrip(benchmark::State& state) {
  shm::ShmArena arena(shm::ArenaLayout::compute(2, 8192, 4));
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    shm::SignalBoard board(arena, 1, 2);
    while (!stop.load(std::memory_order_acquire)) {
      if (board.poll(0)) {
        board.wait_signal(0);
        board.signal(0);
      }
    }
  });
  shm::SignalBoard board(arena, 0, 2);
  for (auto _ : state) {
    board.signal(1);
    board.wait_signal(1);
  }
  stop.store(true, std::memory_order_release);
  peer.join();
}
BENCHMARK(BM_ShmSignalRoundTrip);

void BM_ChunkPipeTransfer(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  shm::ShmArena arena(shm::ArenaLayout::compute(2, 8192, 4));
  AlignedBuffer in(bytes);
  AlignedBuffer out(bytes);
  std::atomic<bool> stop{false};
  std::thread receiver([&] {
    shm::ChunkPipe pipe(arena, 1, 2);
    shm::SignalBoard sig(arena, 1, 2);
    while (!stop.load(std::memory_order_acquire)) {
      if (sig.poll(0)) {
        sig.wait_signal(0);
        pipe.recv(0, out.data(), bytes);
        sig.signal(0);
      }
    }
  });
  shm::ChunkPipe pipe(arena, 0, 2);
  shm::SignalBoard sig(arena, 0, 2);
  for (auto _ : state) {
    sig.signal(1);
    pipe.send(1, in.data(), bytes);
    sig.wait_signal(1);
  }
  stop.store(true, std::memory_order_release);
  receiver.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChunkPipeTransfer)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_SimEngineBarrierRound(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SimRunResult r = run_sim(
        broadwell(), p, [](Comm& comm) { comm.barrier(); },
        /*move_data=*/false);
    benchmark::DoNotOptimize(r.makespan_us);
  }
}
BENCHMARK(BM_SimEngineBarrierRound)->Arg(8)->Arg(28)->Arg(64);

void BM_SimTunedBcast(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const SimRunResult r = run_sim(
        knl(), 64,
        [&](Comm& comm) {
          AlignedBuffer buf(bytes, 4096, /*zero_init=*/false);
          coll::bcast(comm, buf.data(), bytes, 0);
        },
        /*move_data=*/false);
    benchmark::DoNotOptimize(r.makespan_us);
  }
}
BENCHMARK(BM_SimTunedBcast)->Arg(65536)->Arg(1 << 20);

void BM_NllsGammaFit(benchmark::State& state) {
  ModelProbeBackend backend(power8(), 0.02, 3);
  const EstimatedParams seed = estimate_params(backend);
  for (auto _ : state) {
    const GammaFitResult fit =
        fit_gamma(seed.gamma_samples, 10, /*fit_socket_step=*/true);
    benchmark::DoNotOptimize(fit.rms_error);
  }
}
BENCHMARK(BM_NllsGammaFit);

void BM_NativeCmaRead(benchmark::State& state) {
  if (!cma::available()) {
    state.SkipWithError("CMA unavailable");
    return;
  }
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  cma::RemoteTarget target(pages);
  AlignedBuffer local(pages * 4096);
  for (auto _ : state) {
    cma::read_from(target.pid(), target.remote_addr(), local.data(),
                   local.size());
    benchmark::DoNotOptimize(local.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pages * 4096));
}
BENCHMARK(BM_NativeCmaRead)->Arg(1)->Arg(64)->Arg(1024);

} // namespace

// -- Observability overhead guards ------------------------------------------
// The acceptance bar for kacc::obs: with tracing disabled, the per-op Span
// cost on the CMA hot path must be a few branches — no allocations, no
// syscalls, no clock reads. Compare BM_ObsSpanDisabled against
// BM_ObsSpanRingEmit to see the disabled/enabled gap.

namespace {

double fake_clock(void* ctx) {
  auto* t = static_cast<double*>(ctx);
  *t += 0.001;
  return *t;
}

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::CounterBlock block;
  obs::Recorder rec;
  rec.counters.bind(&block);
  // No sink, no clock: the Span constructor/destructor must take the
  // null-recorder fast path.
  for (auto _ : state) {
    obs::Span span(rec, obs::SpanName::kCmaRead, 4096, 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanRingEmit(benchmark::State& state) {
  obs::CounterBlock block;
  obs::Recorder rec;
  rec.counters.bind(&block);
  const std::size_t slots = 1024;
  AlignedBuffer ring(obs::trace_ring_bytes(slots), 4096, /*zero_init=*/true);
  obs::ShmRingSink sink;
  sink.bind(ring.data(), slots);
  double t = 0.0;
  rec.sink = &sink;
  rec.clock = &fake_clock;
  rec.clock_ctx = &t;
  std::vector<obs::TraceRecord> drained;
  std::size_t ops = 0;
  for (auto _ : state) {
    obs::Span span(rec, obs::SpanName::kCmaRead, 4096, 1);
    benchmark::DoNotOptimize(&span);
    if (++ops % (slots / 2) == 0) {
      drained.clear();
      obs::drain_trace_ring(ring.data(), slots, drained);
    }
  }
}
BENCHMARK(BM_ObsSpanRingEmit);

// The v2 additions share the same bar: one relaxed fetch_add per histogram
// sample and one slot write + release store per flight event, so sampling
// every CMA transfer stays within the <= 2% hot-path budget.

void BM_ObsHistRecord(benchmark::State& state) {
  static obs::HistBlock block{};
  obs::HistRegistry hists;
  hists.bind(&block);
  std::uint64_t ns = 12345;
  for (auto _ : state) {
    hists.record_ns(obs::cma_hist(false, 4), ns);
    // Cheap LCG so consecutive samples land in different buckets.
    ns = ns * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(ns);
  }
}
BENCHMARK(BM_ObsHistRecord);

void BM_ObsHistDisabled(benchmark::State& state) {
  obs::HistRegistry hists; // unbound: the no-op fast path
  std::uint64_t ns = 12345;
  for (auto _ : state) {
    hists.record_ns(obs::cma_hist(false, 4), ns);
    ns = ns * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(ns);
  }
}
BENCHMARK(BM_ObsHistDisabled);

void BM_ObsFlightEmit(benchmark::State& state) {
  const std::size_t slots = 256;
  AlignedBuffer ring(obs::flight_ring_bytes(slots), 64, /*zero_init=*/true);
  obs::FlightRecorder fr;
  fr.bind(ring.data(), slots);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    fr.emit(t, obs::FlightKind::kStepIssued, 1, 4096, "bench");
  }
}
BENCHMARK(BM_ObsFlightEmit);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the repo-wide --json flag
// (alias for --benchmark_format=json) so every bench binary shares one CLI.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char json_flag[] = "--benchmark_format=json";
  for (char*& a : args) {
    if (std::strcmp(a, "--json") == 0) {
      a = json_flag;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
