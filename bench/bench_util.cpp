#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iomanip>

#include "baseline/library.h"
#include "coll/allgather.h"
#include "coll/alltoall.h"
#include "coll/bcast.h"
#include "coll/gather.h"
#include "coll/scatter.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"

namespace kacc::bench {
namespace {

struct SeriesData {
  std::string arch;
  std::string algorithm;
  std::vector<std::uint64_t> sizes;
  std::vector<double> latencies_us;
};

struct JsonState {
  bool enabled = false;
  bool executed = false;
  std::string exp;
  std::vector<SeriesData> series; ///< insertion order
};

JsonState& json_state() {
  static JsonState state;
  return state;
}

#ifndef KACC_GIT_SHA
#define KACC_GIT_SHA "unknown"
#endif

/// ISO-8601 UTC wall-clock time ("2026-08-05T12:34:56Z"). Provenance
/// metadata only — the measured latencies stay deterministic.
std::string iso_utc_now() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  struct tm tmv {};
  gmtime_r(&t, &tmv);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tmv);
  return buf;
}

void flush_json_series() {
  const JsonState& st = json_state();
  if (!st.enabled) {
    return;
  }
  const std::string stamp = iso_utc_now();
  for (const SeriesData& s : st.series) {
    std::printf("{\"exp\":\"%s\",\"git_sha\":\"%s\",\"timestamp\":\"%s\","
                "\"arch\":\"%s\",\"algorithm\":\"%s\","
                "\"sizes\":[",
                st.exp.c_str(), KACC_GIT_SHA, stamp.c_str(), s.arch.c_str(),
                s.algorithm.c_str());
    for (std::size_t i = 0; i < s.sizes.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(s.sizes[i]));
    }
    std::printf("],\"latencies_us\":[");
    for (std::size_t i = 0; i < s.latencies_us.size(); ++i) {
      std::printf("%s%.3f", i == 0 ? "" : ",", s.latencies_us[i]);
    }
    std::printf("]}\n");
  }
  std::fflush(stdout);
}

/// Stable label for an AlgoRun: collective, algorithm (or baseline library
/// stand-in), and the tuning knob when set.
std::string run_label(const AlgoRun& run) {
  std::string label = coll_name(run.coll);
  label += "/";
  if (run.lib_index >= 0) {
    static const char* kLibs[] = {"shmem-lib", "pt2pt-cma-lib",
                                  "knem-style-lib"};
    label += run.lib_index < 3 ? kLibs[run.lib_index] : "lib?";
    return label;
  }
  switch (run.coll) {
    case Coll::kScatter: label += coll::to_string(run.scatter); break;
    case Coll::kGather: label += coll::to_string(run.gather); break;
    case Coll::kAlltoall: label += coll::to_string(run.alltoall); break;
    case Coll::kAllgather: label += coll::to_string(run.allgather); break;
    case Coll::kBcast: label += coll::to_string(run.bcast); break;
  }
  if (run.opts.throttle > 0) {
    label += " t=" + std::to_string(run.opts.throttle);
  }
  if (run.opts.ring_stride > 1) {
    label += " stride=" + std::to_string(run.opts.ring_stride);
  }
  return label;
}

} // namespace

void bench_init(int argc, char** argv) {
  JsonState& st = json_state();
  if (argc > 0) {
    st.exp = argv[0];
    const std::size_t slash = st.exp.find_last_of('/');
    if (slash != std::string::npos) {
      st.exp = st.exp.substr(slash + 1);
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      st.enabled = true;
    } else if (std::strcmp(argv[i], "--executed") == 0) {
      st.executed = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--executed]\n",
                   argc > 0 ? argv[0] : "bench");
      std::exit(2);
    }
  }
  std::atexit(&flush_json_series);
}

bool json_mode() { return json_state().enabled; }

bool executed_mode() { return json_state().executed; }

void record_point(const std::string& arch, const std::string& algorithm,
                  std::uint64_t size_bytes, double latency_us) {
  JsonState& st = json_state();
  for (auto it = st.series.rbegin(); it != st.series.rend(); ++it) {
    if (it->arch == arch && it->algorithm == algorithm) {
      it->sizes.push_back(size_bytes);
      it->latencies_us.push_back(latency_us);
      return;
    }
  }
  SeriesData s;
  s.arch = arch;
  s.algorithm = algorithm;
  s.sizes.push_back(size_bytes);
  s.latencies_us.push_back(latency_us);
  st.series.push_back(std::move(s));
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  if (json_mode()) {
    return; // stdout carries only the JSON series
  }
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
  }
  os << "\n== " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << "\n";
  };
  emit(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + (c + 1 < columns_.size() ? "  " : "");
  }
  os << rule << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
}

const char* coll_name(Coll c) {
  switch (c) {
    case Coll::kScatter: return "Scatter";
    case Coll::kGather: return "Gather";
    case Coll::kAlltoall: return "Alltoall";
    case Coll::kAllgather: return "Allgather";
    case Coll::kBcast: return "Bcast";
  }
  return "?";
}

AlgoRun AlgoRun::scatter_algo(coll::ScatterAlgo a, int throttle) {
  AlgoRun r;
  r.coll = Coll::kScatter;
  r.scatter = a;
  r.opts.throttle = throttle;
  return r;
}

AlgoRun AlgoRun::gather_algo(coll::GatherAlgo a, int throttle) {
  AlgoRun r;
  r.coll = Coll::kGather;
  r.gather = a;
  r.opts.throttle = throttle;
  return r;
}

AlgoRun AlgoRun::alltoall_algo(coll::AlltoallAlgo a) {
  AlgoRun r;
  r.coll = Coll::kAlltoall;
  r.alltoall = a;
  return r;
}

AlgoRun AlgoRun::allgather_algo(coll::AllgatherAlgo a, int stride) {
  AlgoRun r;
  r.coll = Coll::kAllgather;
  r.allgather = a;
  r.opts.ring_stride = stride;
  return r;
}

AlgoRun AlgoRun::bcast_algo(coll::BcastAlgo a, int throttle) {
  AlgoRun r;
  r.coll = Coll::kBcast;
  r.bcast = a;
  r.opts.throttle = throttle;
  return r;
}

AlgoRun AlgoRun::baseline(Coll coll, int lib_index) {
  AlgoRun r;
  r.coll = coll;
  r.lib_index = lib_index;
  return r;
}

double measure_us(const ArchSpec& spec, int p, const AlgoRun& run,
                  std::uint64_t bytes) {
  const auto body = [&](Comm& comm) {
    const auto up = static_cast<std::size_t>(p);
    const bool rooted =
        run.coll == Coll::kScatter || run.coll == Coll::kGather;
    const bool fan = run.coll == Coll::kAlltoall ||
                     run.coll == Coll::kAllgather;
    // Timing-only buffers: allocated but never touched.
    AlignedBuffer big((rooted && comm.rank() == 0) || fan ? bytes * up
                                                          : bytes,
                      4096, /*zero_init=*/false);
    AlignedBuffer small(run.coll == Coll::kAlltoall ? bytes * up : bytes,
                        4096, /*zero_init=*/false);

    std::unique_ptr<baseline::BaselineLib> lib;
    if (run.lib_index >= 0) {
      auto libs = baseline::all_baselines();
      lib = std::move(libs[static_cast<std::size_t>(run.lib_index)]);
    }
    switch (run.coll) {
      case Coll::kScatter:
        if (lib) {
          lib->scatter(comm, comm.rank() == 0 ? big.data() : nullptr,
                       small.data(), bytes, 0);
        } else {
          coll::scatter(comm, comm.rank() == 0 ? big.data() : nullptr,
                        small.data(), bytes, 0, run.scatter, run.opts);
        }
        break;
      case Coll::kGather:
        if (lib) {
          lib->gather(comm, small.data(),
                      comm.rank() == 0 ? big.data() : nullptr, bytes, 0);
        } else {
          coll::gather(comm, small.data(),
                       comm.rank() == 0 ? big.data() : nullptr, bytes, 0,
                       run.gather, run.opts);
        }
        break;
      case Coll::kAlltoall:
        if (lib) {
          lib->alltoall(comm, small.data(), big.data(), bytes);
        } else {
          coll::alltoall(comm, small.data(), big.data(), bytes, run.alltoall,
                         run.opts);
        }
        break;
      case Coll::kAllgather:
        if (lib) {
          lib->allgather(comm, small.data(), big.data(), bytes);
        } else {
          coll::allgather(comm, small.data(), big.data(), bytes,
                          run.allgather, run.opts);
        }
        break;
      case Coll::kBcast:
        if (lib) {
          lib->bcast(comm, small.data(), bytes, 0);
        } else {
          coll::bcast(comm, small.data(), bytes, 0, run.bcast, run.opts);
        }
        break;
    }
  };
  const double us = run_sim(spec, p, body, /*move_data=*/false).makespan_us;
  record_point(spec.name + " p=" + std::to_string(p), run_label(run), bytes,
               us);
  return us;
}

std::vector<std::uint64_t> size_sweep(std::uint64_t lo, std::uint64_t hi,
                                      int p, bool quadratic_footprint) {
  // Keep the address-space footprint of one run under ~8 GiB. Benchmark
  // buffers are timing-only and never touched, so this is virtual address
  // space, not physical memory.
  constexpr std::uint64_t kBudget = 8ull << 30;
  const std::uint64_t denom =
      quadratic_footprint
          ? static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p)
          : 2ull * static_cast<std::uint64_t>(p);
  const std::uint64_t cap = std::max<std::uint64_t>(lo, kBudget / denom);
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi && s <= cap; s *= 2) {
    out.push_back(s);
  }
  return out;
}

std::string format_speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
  return buf;
}

void banner(const std::string& what, const std::string& paper_ref) {
  if (json_mode()) {
    return;
  }
  std::cout << "#############################################################"
               "##\n# "
            << what << "\n# Reproduces: " << paper_ref
            << "\n# (deterministic simulator; paper Table IV/V parameters)\n"
            << "###############################################################"
            << "\n";
}

} // namespace kacc::bench
