// Chunk-striped N-level pipeline vs the forced two-level plan vs the best
// flat algorithm, on the deep presets (KNL SNC-4, POWER8 SMT8). Makespans
// come from the deterministic simulator, so the committed
// BENCH_hier_pipeline.json snapshot gates the headline claim — the striped
// 3-level bcast/allgather beating the two-level plan at large messages —
// in CI via tools/compare_bench.py.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "coll/allgather.h"
#include "coll/bcast.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

/// One plan under comparison: a label for the series plus forced algorithm
/// and hierarchy knobs.
struct PlanConfig {
  const char* label;
  coll::BcastAlgo bcast = coll::BcastAlgo::kAuto;
  coll::AllgatherAlgo allgather = coll::AllgatherAlgo::kAuto;
  coll::CollOptions opts;
};

/// The three contenders. "flat" is the classic large-message winner
/// without any hierarchy; "two-level" forces the legacy coarsest-boundary
/// split with striping disabled (a stripe grain above any payload keeps
/// the spliced single-chunk path); "striped-3-level" forces depth 3 and
/// lets the model pick the stripe count.
std::vector<PlanConfig> contenders() {
  PlanConfig flat;
  flat.label = "flat";
  flat.bcast = coll::BcastAlgo::kScatterAllgather;
  flat.allgather = coll::AllgatherAlgo::kRingNeighbor;

  PlanConfig two_level;
  two_level.label = "two-level";
  two_level.bcast = coll::BcastAlgo::kHier;
  two_level.allgather = coll::AllgatherAlgo::kHier;
  two_level.opts.hier_levels = 2;
  two_level.opts.stripe_bytes = std::size_t{1} << 30;

  PlanConfig striped;
  striped.label = "striped-3-level";
  striped.bcast = coll::BcastAlgo::kHier;
  striped.allgather = coll::AllgatherAlgo::kHier;
  striped.opts.hier_levels = 3;
  return {flat, two_level, striped};
}

double bcast_us(const ArchSpec& spec, int p, std::uint64_t bytes,
                const PlanConfig& cfg) {
  return run_sim(spec, p,
                 [&](Comm& comm) {
                   // Timing-only buffer: allocated but never touched.
                   AlignedBuffer buf(bytes, 4096, /*zero_init=*/false);
                   coll::bcast(comm, buf.data(), bytes, 0, cfg.bcast,
                               cfg.opts);
                 },
                 /*move_data=*/false)
      .makespan_us;
}

double allgather_us(const ArchSpec& spec, int p, std::uint64_t bytes,
                    const PlanConfig& cfg) {
  return run_sim(spec, p,
                 [&](Comm& comm) {
                   AlignedBuffer send(bytes, 4096, /*zero_init=*/false);
                   AlignedBuffer recv(bytes * static_cast<std::size_t>(p),
                                      4096, /*zero_init=*/false);
                   coll::allgather(comm, send.data(), recv.data(), bytes,
                                   cfg.allgather, cfg.opts);
                 },
                 /*move_data=*/false)
      .makespan_us;
}

void sweep(const ArchSpec& spec, const char* coll,
           const std::vector<std::uint64_t>& sizes) {
  const int p = spec.default_ranks;
  const std::vector<PlanConfig> cfgs = contenders();
  bench::Table t(spec.name + " " + coll + " (p=" + std::to_string(p) + ")",
                 {"size", cfgs[0].label, cfgs[1].label, cfgs[2].label,
                  "striped vs two-level"});
  for (std::uint64_t bytes : sizes) {
    std::vector<std::string> row = {format_bytes(bytes)};
    double two_level = 0.0;
    double striped = 0.0;
    for (const PlanConfig& cfg : cfgs) {
      const double us = std::string(coll) == "bcast"
                            ? bcast_us(spec, p, bytes, cfg)
                            : allgather_us(spec, p, bytes, cfg);
      bench::record_point(spec.name,
                          std::string(coll) + "/" + cfg.label, bytes, us);
      row.push_back(format_us(us));
      if (std::string(cfg.label) == "two-level") {
        two_level = us;
      } else if (std::string(cfg.label) == "striped-3-level") {
        striped = us;
      }
    }
    row.push_back(bench::format_speedup(two_level / striped));
    t.add_row(std::move(row));
  }
  t.print();
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Striped N-level pipeline vs two-level vs flat",
                "hierarchy refactor gate (not a paper figure)");
  for (const ArchSpec& spec : {knl_snc4(), power8_smt8()}) {
    // Bcast payload per rank; allgather block per rank (the distribute
    // phase then moves p blocks, so the totals land in the same regime).
    sweep(spec, "bcast", {64 * 1024, 256 * 1024, 1024 * 1024,
                          4 * 1024 * 1024});
    sweep(spec, "allgather", {16 * 1024, 64 * 1024, 256 * 1024});
  }
  return 0;
}
