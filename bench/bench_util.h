// Shared harness for the per-figure benchmark binaries. Every bench runs
// the deterministic simulator (one invocation per configuration is exact),
// prints the paper's rows/series as aligned text tables, and needs no
// arguments.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "coll/algo.h"
#include "runtime/comm.h"
#include "topo/arch_spec.h"

namespace kacc::bench {

/// Parses the shared benchmark CLI (call first in every bench main).
/// Flags: --json — suppress the human tables and print one JSON object per
/// measured series on stdout instead ({"exp","arch","algorithm","sizes",
/// "latencies_us"}), the BENCH_*.json trajectory format. The experiment id
/// is the binary's basename. Unknown flags print usage and exit(2).
void bench_init(int argc, char** argv);

/// True after bench_init saw --json.
[[nodiscard]] bool json_mode();

/// True after bench_init saw --executed. Benches that model a composed
/// design analytically (fig17) use this to also run the executable
/// counterpart in the simulator and report the model-vs-measured residual.
[[nodiscard]] bool executed_mode();

/// Appends one measured point to a series keyed by (arch, algorithm).
/// measure_us() records automatically; benches with bespoke measurement
/// loops (timed_cma sweeps) call this directly. Points keep insertion
/// order; series are flushed as JSON at exit when --json is on.
void record_point(const std::string& arch, const std::string& algorithm,
                  std::uint64_t size_bytes, double latency_us);

/// Aligned text table, printed the way the paper's figures are tabulated:
/// first column is the message size, one column per series.
class Table {
public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Which collective a measurement runs.
enum class Coll { kScatter, kGather, kAlltoall, kAllgather, kBcast };

const char* coll_name(Coll c);

/// One measurable configuration: either a kacc algorithm (set the matching
/// algo field) or a baseline library (set lib_index >= 0).
struct AlgoRun {
  Coll coll = Coll::kBcast;
  coll::ScatterAlgo scatter = coll::ScatterAlgo::kAuto;
  coll::GatherAlgo gather = coll::GatherAlgo::kAuto;
  coll::AlltoallAlgo alltoall = coll::AlltoallAlgo::kAuto;
  coll::AllgatherAlgo allgather = coll::AllgatherAlgo::kAuto;
  coll::BcastAlgo bcast = coll::BcastAlgo::kAuto;
  coll::CollOptions opts;
  int lib_index = -1; ///< >= 0: run baseline library instead

  static AlgoRun scatter_algo(coll::ScatterAlgo a, int throttle = 0);
  static AlgoRun gather_algo(coll::GatherAlgo a, int throttle = 0);
  static AlgoRun alltoall_algo(coll::AlltoallAlgo a);
  static AlgoRun allgather_algo(coll::AllgatherAlgo a, int stride = 1);
  static AlgoRun bcast_algo(coll::BcastAlgo a, int throttle = 0);
  static AlgoRun baseline(Coll coll, int lib_index);
};

/// Simulated latency (us) of one collective invocation over p ranks.
/// Deterministic; buffers are timing-only (never touched).
double measure_us(const ArchSpec& spec, int p, const AlgoRun& run,
                  std::uint64_t bytes);

/// Message-size sweep capped so p^2 * bytes (alltoall/allgather footprint)
/// or p * bytes (rooted collectives) stays within a sane address budget.
std::vector<std::uint64_t> size_sweep(std::uint64_t lo, std::uint64_t hi,
                                      int p, bool quadratic_footprint);

/// Formats a speedup like the paper's summary tables ("12.4x").
std::string format_speedup(double ratio);

/// Standard banner naming the figure/table being reproduced.
void banner(const std::string& what, const std::string& paper_ref);

} // namespace kacc::bench
