// Fig 4: phase breakdown of a one-to-all CMA read on Broadwell — syscall,
// permission check, lock acquisition, page pinning, data copy — for varying
// page counts and contention levels. Shows that only the lock phase grows
// with contention (the get_user_pages serialization).
#include <mutex>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

sim::Breakdown one_reader_breakdown(const ArchSpec& spec, int readers,
                                    std::uint64_t pages) {
  sim::Breakdown out;
  std::mutex mu;
  run_sim_ex(
      spec, readers + 1,
      [&](SimComm& comm) {
        if (comm.rank() > 0) {
          const sim::Breakdown bd =
              comm.timed_cma(0, pages * comm.arch().page_size, true);
          std::lock_guard<std::mutex> lk(mu);
          if (bd.total_us() > out.total_us()) {
            out = bd; // slowest reader, as a profiler would report
          }
        }
      },
      /*move_data=*/false);
  return out;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner(
      "Breakdown of one-to-all CMA read phases on Broadwell (ftrace-style)",
      "Fig 4");
  const ArchSpec spec = broadwell();
  const std::vector<std::uint64_t> page_counts = {1, 4, 16, 64, 256, 512};

  for (int readers : {1, 4, 27}) {
    const std::string label =
        readers == 1 ? "No Contention"
                     : std::to_string(readers) + " concurrent readers";
    bench::Table t("Broadwell — " + label + " (all times us)",
                   {"pages", "syscall", "permcheck", "lock", "pin", "copy",
                    "total"});
    for (std::uint64_t pages : page_counts) {
      const sim::Breakdown bd = one_reader_breakdown(spec, readers, pages);
      const std::uint64_t bytes = pages * spec.page_size;
      bench::record_point(label, "syscall", bytes, bd.syscall_us);
      bench::record_point(label, "permcheck", bytes, bd.permcheck_us);
      bench::record_point(label, "lock", bytes, bd.lock_us);
      bench::record_point(label, "pin", bytes, bd.pin_us);
      bench::record_point(label, "copy", bytes, bd.copy_us);
      bench::record_point(label, "total", bytes, bd.total_us());
      t.add_row({std::to_string(pages), format_us(bd.syscall_us),
                 format_us(bd.permcheck_us), format_us(bd.lock_us),
                 format_us(bd.pin_us), format_us(bd.copy_us),
                 format_us(bd.total_us())});
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nNote: the lock phase is the only one that grows with "
               "contention —\nthe paper's root cause (get_user_pages page-"
               "table lock).\n";
  return 0;
}
