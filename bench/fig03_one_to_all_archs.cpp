// Fig 3: one-to-all CMA read latency vs concurrent readers on all three
// architectures — the contention trend is universal.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

double one_to_all_us(const ArchSpec& spec, int readers, std::uint64_t bytes) {
  return run_sim_ex(
             spec, readers + 1,
             [&](SimComm& comm) {
               if (comm.rank() > 0) {
                 comm.timed_cma(0, bytes, true);
               }
             },
             /*move_data=*/false)
      .makespan_us;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("One-to-all CMA read latency vs concurrency, three archs",
                "Fig 3 (a)-(c)");
  const auto sizes = pow2_sizes(4096, 4u << 20);
  for (const ArchSpec& spec : all_presets()) {
    std::vector<int> readers;
    for (int c = 1; c < spec.default_ranks; c *= 2) {
      readers.push_back(c);
    }
    readers.push_back(spec.default_ranks - 1);

    std::vector<std::string> cols = {"size"};
    for (int c : readers) {
      cols.push_back(std::to_string(c) + "r");
    }
    bench::Table t(spec.name + " — one-to-all latency (us) vs readers", cols);
    for (std::uint64_t bytes : sizes) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (int c : readers) {
        const double us = one_to_all_us(spec, c, bytes);
        bench::record_point(spec.name, std::to_string(c) + " readers", bytes,
                            us);
        row.push_back(format_us(us));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
