// Fig 5: determination of the contention factor gamma on each architecture
// using nonlinear least squares (Marquardt). Lock times are measured at
// several page counts to show gamma's independence from message size, then
// the polynomial + socket-knee model is fitted.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/bytes.h"
#include "model/estimator.h"
#include "model/gamma.h"
#include "topo/presets.h"

using namespace kacc;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Contention factor gamma(c): samples and NLLS best fit",
                "Fig 5 (a)-(c)");
  for (const ArchSpec& spec : all_presets()) {
    ModelProbeBackend backend(spec, /*noise=*/0.02, /*seed=*/11);
    EstimatorOptions opts;
    opts.gamma_pages = {10, 50, 100};
    const EstimatedParams est = estimate_params(backend, opts);

    // Reorganize samples as size x concurrency (three "pages" series).
    std::map<int, std::map<std::uint64_t, double>> by_c;
    std::size_t idx = 0;
    for (std::uint64_t pages : opts.gamma_pages) {
      const std::size_t per_page =
          est.gamma_samples.size() / opts.gamma_pages.size();
      for (std::size_t i = 0; i < per_page; ++i, ++idx) {
        const GammaSample& s = est.gamma_samples[idx];
        by_c[s.concurrency][pages] = s.gamma;
      }
    }

    bench::Table t(spec.name + " — measured gamma and best fit",
                   {"readers", "10 pages", "50 pages", "100 pages",
                    "best fit"});
    for (const auto& [c, series] : by_c) {
      auto cell = [&](std::uint64_t pages) {
        auto it = series.find(pages);
        return it == series.end() ? std::string("-")
                                  : format_us(it->second);
      };
      t.add_row({std::to_string(c), cell(10), cell(50), cell(100),
                 format_us(eval_gamma(est.gamma_fit.coeffs, c,
                                      spec.cores_per_socket))});
    }
    t.print();
    if (bench::json_mode()) {
      continue;
    }
    std::printf("fit: gamma(c) = max(1, %.4f c^2 + %.4f c + %.4f"
                " + %.4f (c - %d)^+), rms(log) = %.3f, converged=%s\n",
                est.gamma_fit.coeffs.quad, est.gamma_fit.coeffs.lin,
                est.gamma_fit.coeffs.offset, est.gamma_fit.coeffs.socket_step,
                spec.cores_per_socket, est.gamma_fit.rms_error,
                est.gamma_fit.converged ? "yes" : "no");
  }
  if (!bench::json_mode())
    std::cout << "\nNote: columns agree across page counts — gamma depends on "
               "concurrency only\n(the paper's Fig 5 observation); the knee "
               "sits at one socket's core count.\n";
  return 0;
}
