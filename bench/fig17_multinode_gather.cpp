// Fig 17: multi-node Gather scalability on 2/4/8 KNL nodes (128/256/512
// ranks) — the paper's two-level hierarchical design (tuned intra-node
// gather + one inter-node message per node) versus flat single-level
// gathers over the modeled Omni-Path fabric.
// With --executed, the intra-node phase additionally runs as the composed
// two-level collective in the simulator (the same schedule the Tuner's
// hierarchical pick compiles to), next to the analytic prediction; the
// inter-node fabric stays modeled. The model-vs-measured residual is
// reported as its own --json series.
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "model/predict.h"
#include "net/two_level.h"
#include "topo/presets.h"

using namespace kacc;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Multi-node Gather: two-level (proposed) vs flat designs",
                "Fig 17 (a)-(c)");
  const ArchSpec spec = knl();
  const int rpn = spec.default_ranks; // 64 ranks per node, as in the paper

  for (int nodes : {2, 4, 8}) {
    const net::MultiNodeShape shape{nodes, rpn};
    bench::Table t(std::to_string(nodes) + " nodes, " +
                       std::to_string(shape.total_ranks()) +
                       " processes — Gather latency (us)",
                   {"size", "Proposed 2-level", "Pipelined 2-level",
                    "Flat shm", "Flat CMA-pt2pt", "speedup"});
    for (std::uint64_t bytes : pow2_sizes(1024, 1u << 20)) {
      const double two = net::two_level_gather_us(spec, shape, bytes);
      const double piped =
          net::two_level_gather_pipelined_us(spec, shape, bytes, 8);
      const double flat_shm =
          net::flat_gather_us(spec, shape, bytes, net::IntraKind::kShmTwoCopy);
      const double flat_cma =
          net::flat_gather_us(spec, shape, bytes, net::IntraKind::kCmaPt2pt);
      const double best_flat = std::min(flat_shm, flat_cma);
      const double best_two = std::min(two, piped);
      const std::string arch = std::to_string(nodes) + " nodes gather";
      bench::record_point(arch, "two-level", bytes, two);
      bench::record_point(arch, "two-level pipelined", bytes, piped);
      bench::record_point(arch, "flat shm", bytes, flat_shm);
      bench::record_point(arch, "flat cma-pt2pt", bytes, flat_cma);
      t.add_row({format_bytes(bytes), format_us(two), format_us(piped),
                 format_us(flat_shm), format_us(flat_cma),
                 bench::format_speedup(best_flat / best_two)});
    }
    t.print();
  }
  // Paper §VII-G: "Similar performance improvements were observed with
  // MPI Scatter" — the mirrored composition.
  for (int nodes : {2, 8}) {
    const net::MultiNodeShape shape{nodes, rpn};
    bench::Table t(std::to_string(nodes) + " nodes, " +
                       std::to_string(shape.total_ranks()) +
                       " processes — Scatter latency (us)",
                   {"size", "Proposed 2-level", "Flat shm", "Flat CMA-pt2pt",
                    "speedup"});
    for (std::uint64_t bytes : pow2_sizes(1024, 1u << 20)) {
      const double two = net::two_level_scatter_us(spec, shape, bytes);
      const double flat_shm = net::flat_scatter_us(
          spec, shape, bytes, net::IntraKind::kShmTwoCopy);
      const double flat_cma = net::flat_scatter_us(
          spec, shape, bytes, net::IntraKind::kCmaPt2pt);
      const std::string arch = std::to_string(nodes) + " nodes scatter";
      bench::record_point(arch, "two-level", bytes, two);
      bench::record_point(arch, "flat shm", bytes, flat_shm);
      bench::record_point(arch, "flat cma-pt2pt", bytes, flat_cma);
      t.add_row({format_bytes(bytes), format_us(two), format_us(flat_shm),
                 format_us(flat_cma),
                 bench::format_speedup(std::min(flat_shm, flat_cma) / two)});
    }
    t.print();
  }

  if (bench::executed_mode()) {
    // Executed validation: the intra-node phase of the proposed design is a
    // real schedule, so run it. KNL exercises the composed algorithm's
    // trivial-hierarchy fallback (one socket); Broadwell exercises the
    // genuine leader-based composition across its two sockets.
    for (const ArchSpec& spec : {knl(), broadwell()}) {
      const int p = spec.default_ranks;
      const net::MultiNodeShape shape{4, p};
      bench::Table t(spec.name + ", 4 nodes x " + std::to_string(p) +
                         " ranks — executed intra phase vs model (us)",
                     {"size", "executed total", "modeled total", "residual"});
      const std::string arch = spec.name + " 4 nodes gather";
      for (std::uint64_t bytes : pow2_sizes(4096, 256u << 10)) {
        const net::TwoLevelBreakdown b =
            net::two_level_gather_breakdown(spec, shape, bytes);
        const double sim_intra = bench::measure_us(
            spec, p, bench::AlgoRun::gather_algo(coll::GatherAlgo::kHier),
            bytes);
        const double executed = sim_intra + b.inter_us;
        const double modeled =
            predict::hier_gather(spec, p, bytes, 2) + b.inter_us;
        const double residual = std::abs(modeled - executed) / executed;
        bench::record_point(arch, "two-level executed", bytes, executed);
        bench::record_point(arch, "two-level modeled", bytes, modeled);
        bench::record_point(arch, "two-level residual pct", bytes,
                            residual * 100.0);
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%.1f%%", residual * 100.0);
        t.add_row({format_bytes(bytes), format_us(executed),
                   format_us(modeled), pct});
      }
      t.print();
    }
  }

  if (!bench::json_mode())
    std::cout << "\nNote: the improvement grows with node count (paper §VII-G) "
               "— the flat root\npays the per-message rendezvous cost for "
               "every remote rank, the two-level\ndesign only once per "
               "node.\n";
  return 0;
}
