// Extension (paper §IX future work: "extend these designs to other
// collectives"): contention-aware Reduce and Allreduce built on the same
// substrate — throttled-gather-combine vs contention-free read trees vs
// reduce-scatter shapes, per architecture.
#include <vector>

#include "bench_util.h"
#include "coll/reduce.h"
#include "coll/tuner.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

double reduce_us(const ArchSpec& spec, int p, std::uint64_t bytes,
                 coll::ReduceAlgo algo) {
  const std::size_t count = bytes / sizeof(double);
  const double us = run_sim(
             spec, p,
             [&](Comm& comm) {
               AlignedBuffer send(bytes, 4096, false);
               AlignedBuffer recv(comm.rank() == 0 ? bytes : 0, 4096, false);
               coll::reduce(comm,
                            reinterpret_cast<const double*>(send.data()),
                            comm.rank() == 0
                                ? reinterpret_cast<double*>(recv.data())
                                : nullptr,
                            count, coll::ReduceOp::kSum, 0, algo);
             },
             /*move_data=*/false)
      .makespan_us;
  bench::record_point(spec.name + " p=" + std::to_string(p),
                      std::string("Reduce/") + coll::to_string(algo), bytes,
                      us);
  return us;
}

double allreduce_us(const ArchSpec& spec, int p, std::uint64_t bytes,
                    coll::AllreduceAlgo algo) {
  const std::size_t count = bytes / sizeof(double);
  const double us = run_sim(
             spec, p,
             [&](Comm& comm) {
               AlignedBuffer send(bytes, 4096, false);
               AlignedBuffer recv(bytes, 4096, false);
               coll::allreduce(comm,
                               reinterpret_cast<const double*>(send.data()),
                               reinterpret_cast<double*>(recv.data()), count,
                               coll::ReduceOp::kSum, algo);
             },
             /*move_data=*/false)
      .makespan_us;
  bench::record_point(spec.name + " p=" + std::to_string(p),
                      std::string("Allreduce/") + coll::to_string(algo),
                      bytes, us);
  return us;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Extension: contention-aware Reduce / Allreduce",
                "paper §IX (future work)");
  for (const ArchSpec& spec : all_presets()) {
    const int p = spec.default_ranks;

    bench::Table tr(spec.name + ", " + std::to_string(p) +
                        " processes — Reduce(sum) latency (us)",
                    {"size", "GatherCombine", "BinomialRead",
                     "ReduceScatterGather", "tuner picks"});
    for (std::uint64_t bytes : bench::size_sweep(4096, 8u << 20, p, false)) {
      tr.add_row(
          {format_bytes(bytes),
           format_us(reduce_us(spec, p, bytes,
                               coll::ReduceAlgo::kGatherCombine)),
           format_us(reduce_us(spec, p, bytes,
                               coll::ReduceAlgo::kBinomialRead)),
           format_us(reduce_us(spec, p, bytes,
                               coll::ReduceAlgo::kReduceScatterGather)),
           coll::to_string(
               coll::Tuner().reduce(spec, p, bytes).reduce)});
    }
    tr.print();

    bench::Table ta(spec.name + ", " + std::to_string(p) +
                        " processes — Allreduce(sum) latency (us)",
                    {"size", "Reduce+Bcast", "RecDoubling", "Rabenseifner",
                     "tuner picks"});
    for (std::uint64_t bytes : bench::size_sweep(4096, 8u << 20, p, false)) {
      ta.add_row(
          {format_bytes(bytes),
           format_us(allreduce_us(spec, p, bytes,
                                  coll::AllreduceAlgo::kReduceBcast)),
           format_us(allreduce_us(spec, p, bytes,
                                  coll::AllreduceAlgo::kRecursiveDoubling)),
           format_us(allreduce_us(spec, p, bytes,
                                  coll::AllreduceAlgo::kRabenseifner)),
           coll::to_string(
               coll::Tuner().allreduce(spec, p, bytes).allreduce)});
    }
    ta.print();
  }
  return 0;
}
