// Fig 2: impact of communication pattern on CMA read latency (KNL).
//   (a) All-to-all: distinct pairs — scales flat.
//   (b) One-to-all, same source buffer — collapses with concurrency.
//   (c) One-to-all, distinct buffers of one source — collapses identically,
//       proving the bottleneck is the *source process*, not the buffer.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

double one_to_all_us(const ArchSpec& spec, int readers, std::uint64_t bytes) {
  return run_sim_ex(
             spec, readers + 1,
             [&](SimComm& comm) {
               if (comm.rank() > 0) {
                 comm.timed_cma(0, bytes, true);
               }
             },
             /*move_data=*/false)
      .makespan_us;
}

double all_to_all_us(const ArchSpec& spec, int pairs, std::uint64_t bytes) {
  return run_sim_ex(
             spec, 2 * pairs,
             [&](SimComm& comm) { comm.timed_cma(comm.rank() ^ 1, bytes, true); },
             /*move_data=*/false)
      .makespan_us;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("CMA read latency under three access patterns (KNL)",
                "Fig 2 (a)-(c)");
  const ArchSpec spec = knl();
  const std::vector<int> readers = {1, 4, 8, 16, 32, 63};
  const auto sizes = pow2_sizes(4096, 4u << 20);

  auto make_table = [&](const std::string& title, auto&& fn) {
    std::vector<std::string> cols = {"size"};
    for (int c : readers) {
      cols.push_back(std::to_string(c) + (c == 1 ? " reader" : " readers"));
    }
    bench::Table t(title, cols);
    for (std::uint64_t bytes : sizes) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (int c : readers) {
        const double us = fn(c, bytes);
        bench::record_point(title, std::to_string(c) + " readers", bytes, us);
        row.push_back(format_us(us));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  make_table("(a) All-to-all: distinct source processes — latency (us)",
             [&](int c, std::uint64_t b) { return all_to_all_us(spec, c, b); });
  make_table("(b) One-to-all: same process, same buffer — latency (us)",
             [&](int c, std::uint64_t b) { return one_to_all_us(spec, c, b); });
  // The simulator models the paper's root cause — the per-source page-table
  // lock — so distinct buffers of one source behave identically to (b).
  make_table("(c) One-to-all: same process, different buffers — latency (us)",
             [&](int c, std::uint64_t b) { return one_to_all_us(spec, c, b); });
  return 0;
}
