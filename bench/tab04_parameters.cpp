// Table IV: the empirically obtained model parameters per architecture —
// recovered end-to-end by the estimator from (noisy) step-probe
// measurements, and compared against the ground-truth preset values.
#include <cstdio>

#include "bench_util.h"
#include "model/estimator.h"
#include "topo/presets.h"

using namespace kacc;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Model parameters per architecture (estimator round trip)",
                "Table IV");
  bench::Table t("alpha / beta / l / s per architecture",
                 {"param", "KNL", "Broadwell", "Power8"});
  const auto specs = all_presets();
  std::vector<EstimatedParams> est;
  est.reserve(specs.size());
  for (const ArchSpec& spec : specs) {
    ModelProbeBackend backend(spec, /*noise=*/0.02, /*seed=*/2);
    EstimatorOptions opts;
    opts.repetitions = 5;
    est.push_back(estimate_params(backend, opts));
  }
  auto row = [&](const std::string& name, auto&& fn) {
    std::vector<std::string> cells = {name};
    for (std::size_t i = 0; i < specs.size(); ++i) {
      cells.push_back(fn(specs[i], est[i]));
    }
    t.add_row(std::move(cells));
  };
  char buf[64];
  row("alpha (us), measured", [&](const ArchSpec&, const EstimatedParams& e) {
    std::snprintf(buf, sizeof(buf), "%.2f", e.alpha_us);
    return std::string(buf);
  });
  row("alpha (us), truth", [&](const ArchSpec& s, const EstimatedParams&) {
    std::snprintf(buf, sizeof(buf), "%.2f", s.alpha_us());
    return std::string(buf);
  });
  row("beta (GB/s), measured",
      [&](const ArchSpec&, const EstimatedParams& e) {
        std::snprintf(buf, sizeof(buf), "%.2f",
                      1.0 / e.beta_us_per_byte / 1000.0);
        return std::string(buf);
      });
  row("beta (GB/s), truth", [&](const ArchSpec& s, const EstimatedParams&) {
    std::snprintf(buf, sizeof(buf), "%.2f", s.copy_bw_Bus / 1000.0);
    return std::string(buf);
  });
  row("l (us), measured", [&](const ArchSpec&, const EstimatedParams& e) {
    std::snprintf(buf, sizeof(buf), "%.3f", e.l_us);
    return std::string(buf);
  });
  row("l (us), truth", [&](const ArchSpec& s, const EstimatedParams&) {
    std::snprintf(buf, sizeof(buf), "%.3f", s.l_us());
    return std::string(buf);
  });
  row("s (bytes)", [&](const ArchSpec&, const EstimatedParams& e) {
    return std::to_string(e.page_size);
  });
  row("gamma fit (quad/lin)",
      [&](const ArchSpec&, const EstimatedParams& e) {
        std::snprintf(buf, sizeof(buf), "%.3f/%.2f", e.gamma_fit.coeffs.quad,
                      e.gamma_fit.coeffs.lin);
        return std::string(buf);
      });
  t.print();
  if (!bench::json_mode())
    std::cout << "\nNote: gamma fits the *effective* multiplier on l "
               "(lock*gamma + pin)/l, which is\nwhat lock-time measurements "
               "observe; see DESIGN.md §2 on the reconstruction.\n";
  return 0;
}
