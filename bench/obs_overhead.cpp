// Attribution-ledger overhead: the same two-tenant governed broadcast
// workload with the ledger bound (default) and unbound (KACC_ATTRIB=0,
// the no-observability fast path in nbc::execute_step). The virtual-time
// makespans must be bit-identical — the ledger observes the schedule, it
// must never perturb it — and the committed BENCH_obs_overhead.json
// snapshot gates both series in CI via tools/compare_bench.py. Host-side
// cost (wall-clock per run, ns per AttribLedger::observe) is printed in
// the human table only: wall time is not deterministic, so it is not
// snapshot-gated.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/error.h"
#include "nbc/nbc.h"
#include "node/launch.h"
#include "obs/attrib.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

constexpr std::uint64_t kChunk = 256 * 1024;
constexpr int kRounds = 4;

struct RunCost {
  double makespan_us = 0.0; ///< virtual time (deterministic)
  double wall_ms = 0.0;     ///< host time (informational)
};

RunCost node_run(const ArchSpec& spec, int per_team, bool ledger) {
  if (ledger) {
    ::unsetenv("KACC_ATTRIB");
  } else {
    ::setenv("KACC_ATTRIB", "0", 1);
  }
  std::vector<node::NodeTenant> tenants(2);
  for (int t = 0; t < 2; ++t) {
    auto& ten = tenants[static_cast<std::size_t>(t)];
    ten.name = "t" + std::to_string(t);
    ten.nranks = per_team;
    ten.body = [](node::TenantSession& s) {
      std::vector<std::uint8_t> buf(kChunk, 0);
      for (int i = 0; i < kRounds; ++i) {
        nbc::Request r = nbc::ibcast(s.comm(), buf.data(), buf.size(), 0);
        nbc::wait(r);
      }
    };
  }
  node::NodeOptions opts;
  opts.chunk_bytes = kChunk;
  const auto t0 = std::chrono::steady_clock::now();
  const node::NodeRunResult res = node::run_sim_node(spec, tenants, opts);
  const auto t1 = std::chrono::steady_clock::now();
  ::unsetenv("KACC_ATTRIB");
  if (!res.all_ok()) {
    throw Error("obs_overhead bench: a simulated rank failed");
  }
  const std::uint64_t folded = obs::attrib_total_count(res.obs.attrib_totals);
  if (ledger && folded == 0) {
    throw Error("obs_overhead bench: ledger enabled but empty");
  }
  if (!ledger && folded != 0) {
    throw Error("obs_overhead bench: KACC_ATTRIB=0 did not unbind");
  }
  RunCost cost;
  cost.makespan_us = res.makespan_us;
  cost.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return cost;
}

/// Hot-loop cost of one AttribLedger::observe fold (the per-data-step
/// price natively, where the block lives in the ShmArena).
double observe_ns_per_op() {
  auto block = std::make_unique<obs::AttribBlock>();
  std::memset(static_cast<void*>(block.get()), 0, sizeof(obs::AttribBlock));
  obs::AttribLedger ledger;
  ledger.bind(block.get());
  constexpr int kOps = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    ledger.observe(i & 31, 1 + (i & 7), 8, kChunk, 120.0, 100.0, 110.0,
                   115.0);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kOps;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Attribution-ledger overhead: ledger on vs off",
                "kacc::obs v3 trajectory (not a paper figure)");
  const ArchSpec spec = preset_by_name("knl");
  bench::Table t(spec.name + " — 2 teams x p ranks, " +
                     std::to_string(kRounds) + " governed 256 KiB bcasts",
                 {"ranks/team", "makespan on", "makespan off", "wall on",
                  "wall off"});
  for (int p : {8, 12, 16}) {
    const RunCost off = node_run(spec, p, /*ledger=*/false);
    const RunCost on = node_run(spec, p, /*ledger=*/true);
    if (on.makespan_us != off.makespan_us) {
      // The whole point of the design: observation must not perturb the
      // observed schedule. A mismatch is a correctness bug, not overhead.
      throw Error("obs_overhead bench: ledger perturbed virtual time");
    }
    bench::record_point(spec.name, "obs_overhead/ledger_on",
                        static_cast<std::uint64_t>(p), on.makespan_us);
    bench::record_point(spec.name, "obs_overhead/ledger_off",
                        static_cast<std::uint64_t>(p), off.makespan_us);
    t.add_row({std::to_string(p), format_us(on.makespan_us),
               format_us(off.makespan_us),
               std::to_string(on.wall_ms) + " ms",
               std::to_string(off.wall_ms) + " ms"});
  }
  t.print();
  if (!bench::json_mode()) {
    std::printf("AttribLedger::observe hot loop: %.1f ns/op\n",
                observe_ns_per_op());
  }
  return 0;
}
