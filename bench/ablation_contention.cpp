// Ablation: how much of the latency is the page-lock contention itself?
// Re-runs the contention-sensitive algorithms on a counterfactual machine
// with gamma(c) == 1 (an idealized lock-free kernel-assist, XPMEM-style
// attach-once semantics) and compares:
//
//   * real gamma, naive algorithm        — what existing libraries do
//   * gamma == 1, naive algorithm        — what a lock-free kernel gives
//   * real gamma, contention-aware algo  — what the paper proposes
//
// If the paper's thesis holds, row 3 recovers most of the gap between
// rows 1 and 2 without any kernel changes.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

namespace {

/// The counterfactual: identical machine, contention-free page locks.
ArchSpec without_contention(ArchSpec s) {
  s.name += "-nolock";
  s.gamma = {0.0, 0.0, 1.0, 0.0};
  s.validate();
  return s;
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner(
      "Ablation: lock contention vs contention-aware algorithms",
      "design-choice ablation (DESIGN.md §5b; paper §II motivation)");
  for (const ArchSpec& spec : all_presets()) {
    const ArchSpec ideal = without_contention(spec);
    const int p = spec.default_ranks;

    const AlgoRun naive_scatter =
        AlgoRun::scatter_algo(coll::ScatterAlgo::kParallelRead);
    AlgoRun tuned_scatter;
    tuned_scatter.coll = bench::Coll::kScatter;

    const AlgoRun naive_bcast =
        AlgoRun::bcast_algo(coll::BcastAlgo::kDirectRead);
    AlgoRun tuned_bcast;
    tuned_bcast.coll = bench::Coll::kBcast;

    bench::Table t(
        spec.name + ", " + std::to_string(p) +
            " processes — naive vs lock-free-kernel vs contention-aware (us)",
        {"size", "scatter naive", "scatter nolock", "scatter aware",
         "bcast naive", "bcast nolock", "bcast aware"});
    for (std::uint64_t bytes : bench::size_sweep(4096, 4u << 20, p, false)) {
      t.add_row({format_bytes(bytes),
                 format_us(bench::measure_us(spec, p, naive_scatter, bytes)),
                 format_us(bench::measure_us(ideal, p, naive_scatter, bytes)),
                 format_us(bench::measure_us(spec, p, tuned_scatter, bytes)),
                 format_us(bench::measure_us(spec, p, naive_bcast, bytes)),
                 format_us(bench::measure_us(ideal, p, naive_bcast, bytes)),
                 format_us(bench::measure_us(spec, p, tuned_bcast, bytes))});
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nReading: 'nolock' is the XPMEM-style counterfactual "
               "(attach-once, no per-page\nlock). The contention-aware "
               "algorithms recover most of that gap in software,\nwhich is "
               "the paper's central claim.\n";
  return 0;
}
