// Extension (kacc::nbc): the two properties the nonblocking subsystem
// exists to deliver. Part 1 measures communication/computation overlap —
// an ibcast progressed from test() between compute quanta vs the blocking
// bcast followed by the same compute. Part 2 measures the cross-operation
// admission governor on two concurrent same-root broadcasts: the model cap
// vs naive unthrottled issue, next to the model's own drain-cost arithmetic
// (paper §IV-A3 lifted to node-wide admission).
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "coll/bcast.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "nbc/governor.h"
#include "nbc/nbc.h"
#include "runtime/sim_comm.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

// ---------------------------------------------------------------------------
// Part 1: overlap ratio
// ---------------------------------------------------------------------------

struct OverlapPoint {
  double coll_us = 0.0;    ///< blocking bcast alone
  double serial_us = 0.0;  ///< blocking bcast, then compute
  double overlap_us = 0.0; ///< ibcast progressed between compute quanta
};

// Both sides run the same explicit algorithm: blocking kAuto picks the
// shared-memory lowerings on some archs, which have no nonblocking
// counterpart, and an algorithm mismatch would masquerade as (negative)
// overlap.
constexpr auto kAlgo = coll::BcastAlgo::kKnomialRead;

double bcast_alone_us(const ArchSpec& spec, int p, std::uint64_t bytes) {
  return run_sim(
             spec, p,
             [bytes](Comm& comm) {
               AlignedBuffer buf(bytes, 4096, false);
               coll::bcast(comm, buf.data(), bytes, 0, kAlgo);
             },
             /*move_data=*/false)
      .makespan_us;
}

// Compute work sized to the communication time (the max-overlap regime):
// compute_bytes / combine_bw == t_coll.
OverlapPoint overlap_point(const ArchSpec& spec, int p, std::uint64_t bytes) {
  OverlapPoint pt;
  pt.coll_us = bcast_alone_us(spec, p, bytes);
  const auto compute_bytes =
      static_cast<std::size_t>(pt.coll_us * spec.combine_bw_Bus);
  const std::size_t quantum =
      std::max<std::size_t>(1024, compute_bytes / 256);

  pt.serial_us = run_sim(
                     spec, p,
                     [bytes, compute_bytes](Comm& comm) {
                       AlignedBuffer buf(bytes, 4096, false);
                       coll::bcast(comm, buf.data(), bytes, 0, kAlgo);
                       comm.compute_charge(compute_bytes);
                     },
                     /*move_data=*/false)
                     .makespan_us;

  pt.overlap_us =
      run_sim(
          spec, p,
          [bytes, compute_bytes, quantum](Comm& comm) {
            AlignedBuffer buf(bytes, 4096, false);
            nbc::Request r = nbc::ibcast(comm, buf.data(), bytes, 0, kAlgo);
            std::size_t charged = 0;
            while (!nbc::test(r)) {
              comm.compute_charge(quantum);
              charged += quantum;
            }
            if (charged < compute_bytes) {
              comm.compute_charge(compute_bytes - charged);
            }
          },
          /*move_data=*/false)
          .makespan_us;
  return pt;
}

void run_overlap(const ArchSpec& spec) {
  const int p = spec.default_ranks;
  bench::Table t(spec.name + ", " + std::to_string(p) +
                     " processes — bcast/compute overlap (us)",
                 {"size", "bcast", "bcast+compute", "ibcast||compute",
                  "hidden"});
  for (std::uint64_t bytes : bench::size_sweep(64 * 1024, 8u << 20, p,
                                               false)) {
    const OverlapPoint pt = overlap_point(spec, p, bytes);
    // Fraction of the communication time hidden behind compute.
    const double hidden = (pt.serial_us - pt.overlap_us) / pt.coll_us;
    const std::string arch = spec.name + " p=" + std::to_string(p);
    bench::record_point(arch, "Bcast/blocking+compute", bytes, pt.serial_us);
    bench::record_point(arch, "Ibcast/overlapped", bytes, pt.overlap_us);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%", 100.0 * hidden);
    t.add_row({format_bytes(bytes), format_us(pt.coll_us),
               format_us(pt.serial_us), format_us(pt.overlap_us), pct});
  }
  t.print();
}

// ---------------------------------------------------------------------------
// Part 2: cross-operation admission
// ---------------------------------------------------------------------------

double two_bcast_us(const ArchSpec& spec, int p, std::uint64_t bytes,
                    bool governed) {
  return run_sim(
             spec, p,
             [bytes, governed](Comm& comm) {
               AlignedBuffer a(bytes, 4096, false);
               AlignedBuffer b(bytes, 4096, false);
               nbc::Options nopts;
               nopts.governed = governed;
               nopts.chunk_bytes = 256 * 1024;
               std::array<nbc::Request, 2> reqs = {
                   nbc::ibcast(comm, a.data(), bytes, 0,
                               coll::BcastAlgo::kDirectRead, {}, nopts),
                   nbc::ibcast(comm, b.data(), bytes, 0,
                               coll::BcastAlgo::kDirectRead, {}, nopts),
               };
               nbc::wait_all(reqs);
             },
             /*move_data=*/false)
      .makespan_us;
}

void run_governor(const ArchSpec& spec) {
  const int p = spec.default_ranks;
  const std::uint64_t chunk = 256 * 1024;
  bench::Table t(spec.name + ", " + std::to_string(p) +
                     " processes — two same-root ibcasts (us)",
                 {"size", "naive", "governed", "speedup", "cap*",
                  "model naive", "model governed"});
  for (std::uint64_t bytes :
       bench::size_sweep(512 * 1024, 8u << 20, p, false)) {
    const double naive = two_bcast_us(spec, p, bytes, /*governed=*/false);
    const double governed = two_bcast_us(spec, p, bytes, /*governed=*/true);
    const int cap = nbc::optimal_admission_cap(spec, chunk, p);
    // Both requests read root 0: the source sees 2*(p-1) chunk waves.
    const int transfers =
        2 * (p - 1) *
        static_cast<int>((bytes + chunk - 1) / chunk);
    const std::string arch = spec.name + " p=" + std::to_string(p);
    bench::record_point(arch, "2xIbcast/naive", bytes, naive);
    bench::record_point(arch, "2xIbcast/governed", bytes, governed);
    t.add_row({format_bytes(bytes), format_us(naive), format_us(governed),
               bench::format_speedup(naive / governed), std::to_string(cap),
               format_us(nbc::drain_cost_us(spec, chunk, transfers,
                                            transfers)),
               format_us(nbc::drain_cost_us(spec, chunk, transfers, cap))});
  }
  t.print();
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Extension: nonblocking collectives — overlap and "
                "cross-operation admission",
                "tentpole kacc::nbc; paper §IV-A3 throttling, node-wide");
  for (const ArchSpec& spec : all_presets()) {
    run_overlap(spec);
    run_governor(spec);
  }
  return 0;
}
