// Table VII: speedup of the proposed designs at the largest evaluated
// message size — where data movement dominates and gains shrink for the
// low-contention collectives (Alltoall/Allgather) but persist for the
// rooted ones.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"
#include "vs_libs_common.h"

using namespace kacc;
using bench::AlgoRun;
using bench::Coll;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Speedup at the largest evaluated message size",
                "Table VII");
  const Coll colls[] = {Coll::kBcast, Coll::kScatter, Coll::kGather,
                        Coll::kAllgather, Coll::kAlltoall};
  for (const ArchSpec& spec : all_presets()) {
    const int p = spec.default_ranks;
    const std::vector<int> libs =
        spec.name == "Power8" ? std::vector<int>{0, 2}
                              : std::vector<int>{0, 1, 2};
    std::vector<std::string> cols = {"collective", "size"};
    for (int lib : libs) {
      cols.push_back(bench::kLibNames[lib]);
    }
    bench::Table t(spec.name + ", " + std::to_string(p) +
                       " processes — speedup at the largest size",
                   cols);
    for (Coll coll : colls) {
      const bool quadratic = coll == Coll::kAllgather ||
                             coll == Coll::kAlltoall;
      const auto sizes = bench::size_sweep(
          1024, quadratic ? (1u << 20) : (16u << 20), p, quadratic);
      const std::uint64_t bytes = sizes.back();
      AlgoRun proposed;
      proposed.coll = coll;
      const double ours = bench::measure_us(spec, p, proposed, bytes);
      std::vector<std::string> row = {bench::coll_name(coll),
                                      format_bytes(bytes)};
      for (int lib : libs) {
        const double b =
            bench::measure_us(spec, p, AlgoRun::baseline(coll, lib), bytes);
        row.push_back(bench::format_speedup(b / ours));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nPaper reference (Table VII): Scatter/Gather keep multi-x "
               "gains at the largest\nsizes; Alltoall/Allgather shrink to "
               "~1.05-1.5x (data movement dominates).\n";
  return 0;
}
