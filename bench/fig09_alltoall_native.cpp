// Fig 9: the advantage of native CMA collectives — pairwise Alltoall
// implemented three ways: two-copy shared memory (SHMEM), point-to-point
// CMA with RTS/CTS control messages (CMA-pt2pt), and the native CMA
// collective that exchanges addresses once (CMA-coll).
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Pairwise Alltoall: SHMEM vs CMA-pt2pt vs CMA-coll",
                "Fig 9 (a)-(b)");
  const ArchSpec archs[] = {knl(), broadwell()};
  for (const ArchSpec& spec : archs) {
    const int p = spec.default_ranks;
    const std::pair<std::string, AlgoRun> series[] = {
        {"SHMEM", AlgoRun::alltoall_algo(coll::AlltoallAlgo::kPairwiseShmem)},
        {"CMA-pt2pt",
         AlgoRun::alltoall_algo(coll::AlltoallAlgo::kPairwisePt2pt)},
        {"CMA-coll", AlgoRun::alltoall_algo(coll::AlltoallAlgo::kPairwise)},
    };
    bench::Table t(spec.name + ", " + std::to_string(p) +
                       " processes — Alltoall latency (us)",
                   {"size", "SHMEM", "CMA-pt2pt", "CMA-coll",
                    "coll vs pt2pt"});
    for (std::uint64_t bytes : bench::size_sweep(1024, 1u << 20, p, true)) {
      double vals[3] = {};
      for (int i = 0; i < 3; ++i) {
        vals[i] = bench::measure_us(spec, p, series[i].second, bytes);
      }
      t.add_row({format_bytes(bytes), format_us(vals[0]), format_us(vals[1]),
                 format_us(vals[2]),
                 bench::format_speedup(vals[1] / vals[2])});
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nNote: CMA-coll's win over CMA-pt2pt shrinks for very large "
               "messages — the\nRTS/CTS overhead amortizes (paper §IV-C3).\n";
  return 0;
}
