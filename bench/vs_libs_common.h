// Shared driver for the Fig 13-16/18 "proposed vs state-of-the-art
// libraries" comparisons: the tuned kacc collective against the three
// baseline library stand-ins (see DESIGN.md §2 for the substitution).
#pragma once

#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/arch_spec.h"

namespace kacc::bench {

inline const char* kLibNames[] = {"MVAPICH2* (shm)", "IntelMPI* (pt2pt)",
                                  "OpenMPI* (knem)"};

/// Prints one arch's proposed-vs-libraries sweep; lib_mask selects which
/// baselines appear (Intel MPI was absent on the paper's POWER8 system).
inline void vs_libs_table(const ArchSpec& spec, Coll coll,
                          std::uint64_t lo, std::uint64_t hi,
                          bool quadratic_footprint,
                          const std::vector<int>& libs = {0, 1, 2}) {
  const int p = spec.default_ranks;
  std::vector<std::string> cols = {"size", "Proposed"};
  for (int lib : libs) {
    cols.push_back(kLibNames[lib]);
  }
  cols.push_back("best speedup");

  AlgoRun proposed;
  proposed.coll = coll; // all algo fields default to kAuto -> the Tuner

  Table t(spec.name + ", " + std::to_string(p) + " processes — " +
              coll_name(coll) + " latency (us)",
          cols);
  for (std::uint64_t bytes : size_sweep(lo, hi, p, quadratic_footprint)) {
    const double ours = measure_us(spec, p, proposed, bytes);
    std::vector<std::string> row = {format_bytes(bytes), format_us(ours)};
    double best = 1e300;
    for (int lib : libs) {
      const double b = measure_us(spec, p, AlgoRun::baseline(coll, lib),
                                  bytes);
      best = std::min(best, b);
      row.push_back(format_us(b));
    }
    row.push_back(format_speedup(best / ours));
    t.add_row(std::move(row));
  }
  t.print();
}

} // namespace kacc::bench
