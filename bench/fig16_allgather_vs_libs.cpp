// Allgather vs state-of-the-art libraries — the tuned kacc design ("Proposed") against the three
// baseline library stand-ins. Library names carry a * because they are
// behavioural stand-ins, not the closed-source originals (DESIGN.md §2).
#include "bench_util.h"
#include "topo/presets.h"
#include "vs_libs_common.h"

using namespace kacc;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Allgather vs state-of-the-art libraries", "Fig 16 (a)-(b)");
  bench::vs_libs_table(knl(), bench::Coll::kAllgather, 1024, 1u << 20, true);
  bench::vs_libs_table(broadwell(), bench::Coll::kAllgather, 1024, 1u << 20, true);
  return 0;
}
