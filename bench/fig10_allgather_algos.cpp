// Fig 10: Allgather algorithm comparison — ring-source read/write,
// ring-neighbor with socket-aware vs socket-oblivious strides, recursive
// doubling, and Bruck.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/mathutil.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Allgather algorithms", "Fig 10 (a)-(c)");
  for (const ArchSpec& spec : all_presets()) {
    const int p = spec.default_ranks;
    std::vector<std::pair<std::string, AlgoRun>> series = {
        {"Ring-Src-Read",
         AlgoRun::allgather_algo(coll::AllgatherAlgo::kRingSourceRead)},
        {"Ring-Src-Write",
         AlgoRun::allgather_algo(coll::AllgatherAlgo::kRingSourceWrite)},
        {"Neighbor-1",
         AlgoRun::allgather_algo(coll::AllgatherAlgo::kRingNeighbor, 1)},
    };
    if (spec.sockets > 1) {
      // The socket-oblivious stride the paper contrasts on Broadwell.
      const int bad_stride = 5;
      if (gcd_u64(static_cast<std::uint64_t>(p),
                  static_cast<std::uint64_t>(bad_stride)) == 1) {
        series.emplace_back(
            "Neighbor-5",
            AlgoRun::allgather_algo(coll::AllgatherAlgo::kRingNeighbor, 5));
      }
    }
    series.emplace_back(
        "RecDoubling",
        AlgoRun::allgather_algo(coll::AllgatherAlgo::kRecursiveDoubling));
    series.emplace_back("Bruck",
                        AlgoRun::allgather_algo(coll::AllgatherAlgo::kBruck));

    std::vector<std::string> cols = {"size"};
    for (const auto& [name, run] : series) {
      cols.push_back(name);
    }
    bench::Table t(spec.name + ", " + std::to_string(p) +
                       " processes — Allgather latency (us)",
                   cols);
    for (std::uint64_t bytes : bench::size_sweep(1024, 1u << 20, p, true)) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& [name, run] : series) {
        row.push_back(format_us(bench::measure_us(spec, p, run, bytes)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nNote (Broadwell): Neighbor-1 beats Neighbor-5 — fewer "
               "concurrent inter-socket\ntransfers share the QPI link; "
               "recursive doubling's final cross-socket exchange\nmakes it "
               "lose for large messages (paper §V-A5).\n";
  return 0;
}
