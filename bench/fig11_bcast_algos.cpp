// Fig 11: Broadcast algorithm comparison — direct read/write, k-nomial
// read/write, and Van de Geijn scatter-allgather.
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "topo/presets.h"

using namespace kacc;
using bench::AlgoRun;

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("Broadcast algorithms", "Fig 11 (a)-(c)");
  struct ArchCase {
    ArchSpec spec;
    int knomial_k;
  };
  const ArchCase cases[] = {{knl(), 8}, {broadwell(), 4}, {power8(), 10}};
  for (const ArchCase& c : cases) {
    const int p = c.spec.default_ranks;
    const std::pair<std::string, AlgoRun> series[] = {
        {"ParallelRead", AlgoRun::bcast_algo(coll::BcastAlgo::kDirectRead)},
        {"SequentialWrite",
         AlgoRun::bcast_algo(coll::BcastAlgo::kDirectWrite)},
        {"ScatterAllgather",
         AlgoRun::bcast_algo(coll::BcastAlgo::kScatterAllgather)},
        {"KnomialRead",
         AlgoRun::bcast_algo(coll::BcastAlgo::kKnomialRead, c.knomial_k)},
        {"KnomialWrite",
         AlgoRun::bcast_algo(coll::BcastAlgo::kKnomialWrite, c.knomial_k)},
    };
    std::vector<std::string> cols = {"size"};
    for (const auto& [name, run] : series) {
      cols.push_back(name);
    }
    bench::Table t(c.spec.name + ", " + std::to_string(p) +
                       " processes — Bcast latency (us), k=" +
                       std::to_string(c.knomial_k),
                   cols);
    for (std::uint64_t bytes : bench::size_sweep(1024, 16u << 20, p, false)) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& [name, run] : series) {
        row.push_back(format_us(bench::measure_us(c.spec, p, run, bytes)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  if (!bench::json_mode())
    std::cout << "\nNote: k-nomial beats the direct algorithms everywhere; "
               "scatter-allgather wins\nfor the largest messages by avoiding "
               "contention entirely (paper §V-B4).\n";
  return 0;
}
