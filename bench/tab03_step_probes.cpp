// Table III: triggering the individual steps of a CMA transfer by varying
// the liovcnt/riovcnt arguments of process_vm_readv. Runs the real syscall
// path when the environment allows CMA, and the simulated backend
// otherwise (or for the paper's architectures).
#include <cstdio>

#include "bench_util.h"
#include "common/bytes.h"
#include "cma/probe.h"
#include "cma/step_probe.h"
#include "model/estimator.h"
#include "topo/presets.h"

using namespace kacc;

namespace {

void print_steps(const std::string& title, StepTimes (*measure)(void*, std::uint64_t),
                 void* ctx, const std::vector<std::uint64_t>& pages) {
  bench::Table t(title, {"pages", "T1 syscall", "T2 +access", "T3 +lock/pin",
                         "T4 +copy"});
  for (std::uint64_t n : pages) {
    const StepTimes s = measure(ctx, n);
    t.add_row({std::to_string(n), format_us(s.syscall_us),
               format_us(s.access_us), format_us(s.lockpin_us),
               format_us(s.full_us)});
  }
  t.print();
}

} // namespace

int main(int argc, char** argv) {
  kacc::bench::bench_init(argc, argv);
  bench::banner("CMA step triggering via partial iovec counts",
                "Table III");
  const std::vector<std::uint64_t> pages = {1, 16, 64, 256, 1024};

  // Simulated backends for the paper's architectures.
  for (const ArchSpec& spec : all_presets()) {
    ModelProbeBackend backend(spec, /*noise=*/0.02, /*seed=*/5);
    print_steps(
        spec.name + " (simulated, us)",
        [](void* ctx, std::uint64_t n) {
          return static_cast<ModelProbeBackend*>(ctx)->measure_steps(n);
        },
        &backend, pages);
  }

  // Real syscall path against a live child process, when permitted.
  if (cma::available()) {
    print_steps(
        "host (native process_vm_readv, us)",
        [](void*, std::uint64_t n) {
          cma::RemoteTarget target(n);
          return cma::measure_native_steps(target, n, /*reps=*/32);
        },
        nullptr, pages);
  } else {
    if (!bench::json_mode()) {
      std::printf("\nnative probe skipped: %s\n", cma::unavailable_reason());
    }
  }
  return 0;
}
